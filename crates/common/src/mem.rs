//! Byte-accurate memory accounting with an enforced budget.
//!
//! The reproduced paper's headline experiment asks: *given a machine with a
//! fixed amount of RAM, what is the largest coupled FEM/BEM system each
//! algorithm can process?* On the original 128 GiB node the answer is found
//! by actually running out of memory. We reproduce the experiment at a scaled
//! size by routing every large algebraic object (dense Schur blocks, sparse
//! factors, H-matrices, frontal matrices, ...) through a [`MemTracker`] with
//! a configurable budget; an allocation pushing the live total past the
//! budget fails with [`Error::OutOfMemory`], which the coupled algorithms
//! surface exactly where the real solvers would die.
//!
//! Charging is explicit and RAII-scoped: [`MemTracker::charge`] returns a
//! [`MemCharge`] guard that releases the bytes when dropped. [`Tracked`]
//! bundles a value with its charge so the two cannot go out of sync.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};

/// Thread-safe live/peak byte accounting with an optional hard budget.
#[derive(Debug)]
pub struct MemTracker {
    live: AtomicUsize,
    peak: AtomicUsize,
    budget: usize,
}

impl MemTracker {
    /// Tracker with a hard budget in bytes.
    pub fn with_budget(budget: usize) -> Arc<Self> {
        Arc::new(Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            budget,
        })
    }

    /// Tracker that only measures (budget = `usize::MAX`).
    pub fn unbounded() -> Arc<Self> {
        Self::with_budget(usize::MAX)
    }

    /// Currently live tracked bytes.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Reset the peak to the current live value (used between experiment
    /// phases that are reported separately).
    ///
    /// Safe against concurrent [`MemTracker::charge`] calls: a plain
    /// `peak.store(live)` could be overtaken by a charge that raised `live`
    /// between the load and the store, leaving `peak < live` at rest. The
    /// trailing `fetch_max` against a re-read of `live` repairs every such
    /// interleaving — either this call observes the raised `live`, or the
    /// racing charge's own `fetch_max` (which runs after its `live` update)
    /// lands after our store.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
        self.peak
            .fetch_max(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reserve `bytes` in the accounting without creating a guard; the raw
    /// counterpart of [`MemTracker::charge`] used by [`MemCharge::resize`] to
    /// grow an existing guard in place (a nested guard would hold an extra
    /// `Arc` reference that `resize` would have to leak).
    fn reserve_raw(&self, bytes: usize, what: &'static str) -> Result<()> {
        // Optimistic CAS loop so concurrent charges cannot jointly overshoot
        // the budget.
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            let new = cur.checked_add(bytes).ok_or(Error::OutOfMemory {
                requested: bytes,
                live: cur,
                budget: self.budget,
                what,
            })?;
            if new > self.budget {
                return Err(Error::OutOfMemory {
                    requested: bytes,
                    live: cur,
                    budget: self.budget,
                    what,
                });
            }
            match self
                .live
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Release `bytes` from the accounting, saturating at zero so a
    /// mis-sized release can never wrap `live` around to a huge value (which
    /// would wedge every further charge as out-of-budget).
    fn release_raw(&self, bytes: usize) {
        let _ = self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    /// Charge `bytes` against the budget. Fails with [`Error::OutOfMemory`]
    /// without mutating the accounting when the budget would be exceeded.
    pub fn charge(self: &Arc<Self>, bytes: usize, what: &'static str) -> Result<MemCharge> {
        self.reserve_raw(bytes, what)?;
        Ok(MemCharge {
            tracker: Arc::clone(self),
            bytes,
        })
    }

    /// Charge for a [`ByteSized`] value and bundle them.
    pub fn track<M: ByteSized>(
        self: &Arc<Self>,
        value: M,
        what: &'static str,
    ) -> Result<Tracked<M>> {
        let charge = self.charge(value.byte_size(), what)?;
        Ok(Tracked { value, charge })
    }
}

/// RAII guard for tracked bytes; releases its bytes on drop.
#[derive(Debug)]
pub struct MemCharge {
    tracker: Arc<MemTracker>,
    bytes: usize,
}

impl MemCharge {
    /// Bytes held by this charge.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow or shrink the charge to `new_bytes` (e.g. after a compression
    /// step shrank the underlying object). Growth is budget-checked; a
    /// failed grow leaves the charge unchanged. Shrinking releases only this
    /// guard's own delta and saturates at zero in the tracker, so `live` can
    /// never underflow — not even for a shrink below the original charge.
    pub fn resize(&mut self, new_bytes: usize, what: &'static str) -> Result<()> {
        if new_bytes > self.bytes {
            // Reserve the delta directly (no nested guard: an inner
            // `MemCharge` would pin an extra Arc reference to the tracker
            // that could only be discarded by leaking it).
            self.tracker.reserve_raw(new_bytes - self.bytes, what)?;
        } else {
            self.tracker.release_raw(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.tracker.release_raw(self.bytes);
    }
}

/// Anything whose dominant memory footprint can be reported in bytes.
pub trait ByteSized {
    fn byte_size(&self) -> usize;
}

impl<T> ByteSized for Vec<T> {
    fn byte_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// A value bundled with the memory charge that accounts for it.
#[derive(Debug)]
pub struct Tracked<M> {
    value: M,
    charge: MemCharge,
}

impl<M> Tracked<M> {
    pub fn get(&self) -> &M {
        &self.value
    }

    pub fn get_mut(&mut self) -> &mut M {
        &mut self.value
    }

    pub fn charge(&self) -> &MemCharge {
        &self.charge
    }

    /// Re-synchronize the charge with the value's current size (after an
    /// in-place mutation such as a recompression).
    pub fn resync(&mut self, what: &'static str) -> Result<()>
    where
        M: ByteSized,
    {
        let bytes = self.value.byte_size();
        self.charge.resize(bytes, what)
    }

    pub fn into_inner(self) -> M {
        self.value
    }
}

impl<M> std::ops::Deref for Tracked<M> {
    type Target = M;
    fn deref(&self) -> &M {
        &self.value
    }
}

impl<M> std::ops::DerefMut for Tracked<M> {
    fn deref_mut(&mut self) -> &mut M {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let t = MemTracker::with_budget(1000);
        let c1 = t.charge(400, "a").unwrap();
        assert_eq!(t.live(), 400);
        let c2 = t.charge(500, "b").unwrap();
        assert_eq!(t.live(), 900);
        assert_eq!(t.peak(), 900);
        drop(c1);
        assert_eq!(t.live(), 500);
        assert_eq!(t.peak(), 900);
        drop(c2);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn budget_enforced() {
        let t = MemTracker::with_budget(100);
        let _c = t.charge(80, "a").unwrap();
        let err = t.charge(30, "b").unwrap_err();
        assert!(err.is_oom());
        // Failed charge must not leak accounting.
        assert_eq!(t.live(), 80);
    }

    #[test]
    fn resize_shrink_and_grow() {
        let t = MemTracker::with_budget(100);
        let mut c = t.charge(60, "a").unwrap();
        c.resize(20, "a").unwrap();
        assert_eq!(t.live(), 20);
        c.resize(90, "a").unwrap();
        assert_eq!(t.live(), 90);
        assert!(c.resize(200, "a").is_err());
        assert_eq!(t.live(), 90);
        drop(c);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn tracked_resync() {
        let t = MemTracker::with_budget(10_000);
        let v: Vec<u64> = Vec::with_capacity(100);
        let mut tracked = t.track(v, "vec").unwrap();
        assert_eq!(t.live(), 800);
        tracked.get_mut().shrink_to_fit();
        tracked.resync("vec").unwrap();
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn concurrent_charges_respect_budget() {
        let t = MemTracker::with_budget(1000);
        // Guards live in a shared vector so no thread releases early; the
        // total number of successful charges must then be exactly budget/10.
        let guards = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if let Ok(g) = t.charge(10, "x") {
                            guards.lock().push(g);
                        }
                    }
                });
            }
        });
        assert_eq!(guards.lock().len(), 100);
        assert_eq!(t.live(), 1000);
        assert_eq!(t.peak(), 1000);
        guards.lock().clear();
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn unbounded_never_fails() {
        let t = MemTracker::unbounded();
        let _c = t.charge(usize::MAX / 2, "huge").unwrap();
    }

    #[test]
    fn resize_grow_does_not_leak_tracker_references() {
        // Regression: the grow path used to charge a nested guard and
        // `mem::forget` it, leaking one Arc<MemTracker> strong reference per
        // grow (and keeping the tracker alive forever after many resizes).
        let t = MemTracker::with_budget(1_000_000);
        let base = Arc::strong_count(&t);
        let mut c = t.charge(10, "a").unwrap();
        for step in 1..100usize {
            c.resize(10 + step * 7, "a").unwrap();
        }
        assert_eq!(
            Arc::strong_count(&t),
            base + 1, // exactly the one reference held by `c`
            "resize must not accumulate tracker references"
        );
        drop(c);
        assert_eq!(Arc::strong_count(&t), base);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn resize_shrink_below_original_charge_never_underflows() {
        let t = MemTracker::with_budget(1000);
        let other = t.charge(100, "other").unwrap();
        let mut c = t.charge(300, "a").unwrap();
        // Shrink to zero (below any "original" size), then grow again: the
        // accounting must stay exact and never wrap.
        c.resize(0, "a").unwrap();
        assert_eq!(t.live(), 100);
        c.resize(250, "a").unwrap();
        assert_eq!(t.live(), 350);
        drop(c);
        drop(other);
        assert_eq!(t.live(), 0);
        assert!(t.peak() <= 1000);
    }

    #[test]
    fn reset_peak_racing_charges_never_records_peak_below_live() {
        // Seeded-thread stress: chargers push live up and down while another
        // thread hammers reset_peak. After every reset completes, the
        // invariant `peak >= live` must hold at rest; we check it from the
        // charger threads right after each charge (their own fetch_max has
        // run by then, so a violation can only come from a lost update in
        // reset_peak).
        for round in 0..20u64 {
            let t = MemTracker::with_budget(usize::MAX);
            let stop = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let (t, stop) = (&t, &stop);
                for thr in 0..4u64 {
                    s.spawn(move || {
                        // Deterministic per-thread charge sizes (seeded by
                        // round and thread id) so failures reproduce.
                        let mut state = round * 1_000 + thr + 1;
                        for _ in 0..500 {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let bytes = (state >> 33) as usize % 4096 + 1;
                            let g = t.charge(bytes, "stress").unwrap();
                            assert!(
                                t.peak() >= g.bytes(),
                                "peak dropped below a just-made charge"
                            );
                            drop(g);
                        }
                        stop.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                }
                s.spawn(move || {
                    while stop.load(std::sync::atomic::Ordering::SeqCst) < 4 {
                        t.reset_peak();
                        assert!(
                            t.peak() >= t.live().saturating_sub(0) || t.peak() >= t.live(),
                            "reset_peak left peak below live"
                        );
                        std::hint::spin_loop();
                    }
                });
            });
            t.reset_peak();
            assert_eq!(t.live(), 0);
            assert_eq!(t.peak(), 0, "all charges released: peak resets to 0");
        }
    }
}
