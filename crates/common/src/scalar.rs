//! Generic scalar abstraction over real and complex floating point types.
//!
//! The reproduced paper solves two kinds of systems: real symmetric ones
//! (the academic *pipe* test case, factored with LDLᵀ) and complex
//! non-symmetric ones (the industrial aircraft case, factored with LU).
//! Every kernel in this workspace is therefore generic over [`Scalar`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real number trait: the type of norms, singular values and tolerances.
pub trait RealScalar:
    Copy
    + Send
    + Sync
    + 'static
    + fmt::Debug
    + fmt::Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    const RZERO: Self;
    const RONE: Self;
    /// Machine epsilon of the underlying precision.
    const EPSILON: Self;

    fn rsqrt_val(self) -> Self;
    fn rabs(self) -> Self;
    fn rmax(self, other: Self) -> Self;
    fn rmin(self, other: Self) -> Self;
    fn to_f64(self) -> f64;
    fn from_f64_real(v: f64) -> Self;
    fn is_finite_real(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl RealScalar for $t {
            const RZERO: Self = 0.0;
            const RONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn rsqrt_val(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn rabs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn rmax(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline]
            fn rmin(self, other: Self) -> Self {
                if self < other {
                    self
                } else {
                    other
                }
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64_real(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn is_finite_real(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

/// Field scalar used throughout the solver stack.
///
/// Implemented for `f32`, `f64`, [`C32`] and [`C64`]. The `conj`/`herm`
/// distinction matters: the paper's LDLᵀ factorizations of *complex
/// symmetric* matrices use the plain (non-conjugated) transpose, whereas
/// norms and stability checks use moduli.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + 'static
    + fmt::Debug
    + fmt::Display
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    type Real: RealScalar;

    const ZERO: Self;
    const ONE: Self;
    /// `true` when the type carries an imaginary part.
    const IS_COMPLEX: bool;

    fn from_real(r: Self::Real) -> Self;
    fn from_f64(v: f64) -> Self;
    /// Build a scalar from real and imaginary parts (imaginary part ignored
    /// for real types).
    fn from_parts(re: Self::Real, im: Self::Real) -> Self;
    fn real(self) -> Self::Real;
    fn imag(self) -> Self::Real;
    fn conj(self) -> Self;
    /// Modulus |x|.
    fn abs(self) -> Self::Real;
    /// Squared modulus |x|².
    fn abs2(self) -> Self::Real;
    /// Principal square root.
    fn sqrt(self) -> Self;
    fn recip(self) -> Self;
    fn is_finite(self) -> bool;
    /// Uniform random value with entries in (-1, 1), used by tests and the
    /// randomized workload generators.
    fn rand_unit<R: rand::Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_scalar_real {
    ($t:ty) => {
        impl Scalar for $t {
            type Real = $t;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const IS_COMPLEX: bool = false;

            #[inline]
            fn from_real(r: Self::Real) -> Self {
                r
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn from_parts(re: Self::Real, _im: Self::Real) -> Self {
                re
            }
            #[inline]
            fn real(self) -> Self::Real {
                self
            }
            #[inline]
            fn imag(self) -> Self::Real {
                0.0
            }
            #[inline]
            fn conj(self) -> Self {
                self
            }
            #[inline]
            fn abs(self) -> Self::Real {
                <$t>::abs(self)
            }
            #[inline]
            fn abs2(self) -> Self::Real {
                self * self
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn recip(self) -> Self {
                1.0 / self
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn rand_unit<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
                rng.random_range(-1.0..1.0) as $t
            }
        }
    };
}

impl_scalar_real!(f32);
impl_scalar_real!(f64);

/// Minimal complex number type (we implement it ourselves rather than pull in
/// `num-complex`; the operation set required by the solvers is small).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

pub type C32 = Complex<f32>;
pub type C64 = Complex<f64>;

impl<T: RealScalar> Complex<T> {
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

impl<T: RealScalar> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl<T: RealScalar> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl<T: RealScalar> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl<T: RealScalar> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        // Smith's algorithm: avoids overflow for widely scaled operands.
        if o.re.rabs() >= o.im.rabs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            Self::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            Self::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl<T: RealScalar> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: RealScalar> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl<T: RealScalar> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl<T: RealScalar> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl<T: RealScalar> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::new(T::RZERO, T::RZERO), |a, b| a + b)
    }
}

macro_rules! impl_scalar_complex {
    ($re:ty) => {
        impl Scalar for Complex<$re> {
            type Real = $re;

            const ZERO: Self = Complex { re: 0.0, im: 0.0 };
            const ONE: Self = Complex { re: 1.0, im: 0.0 };
            const IS_COMPLEX: bool = true;

            #[inline]
            fn from_real(r: Self::Real) -> Self {
                Complex::new(r, 0.0)
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                Complex::new(v as $re, 0.0)
            }
            #[inline]
            fn from_parts(re: Self::Real, im: Self::Real) -> Self {
                Complex::new(re, im)
            }
            #[inline]
            fn real(self) -> Self::Real {
                self.re
            }
            #[inline]
            fn imag(self) -> Self::Real {
                self.im
            }
            #[inline]
            fn conj(self) -> Self {
                Complex::new(self.re, -self.im)
            }
            #[inline]
            fn abs(self) -> Self::Real {
                // hypot avoids overflow/underflow for extreme magnitudes.
                self.re.hypot(self.im)
            }
            #[inline]
            fn abs2(self) -> Self::Real {
                self.re * self.re + self.im * self.im
            }
            #[inline]
            fn sqrt(self) -> Self {
                // Principal branch via the half-angle formulas.
                let m = self.abs();
                if m == 0.0 {
                    return Complex::new(0.0, 0.0);
                }
                let re = ((m + self.re) / 2.0).sqrt();
                let im_mag = ((m - self.re) / 2.0).sqrt();
                let im = if self.im >= 0.0 { im_mag } else { -im_mag };
                Complex::new(re, im)
            }
            #[inline]
            fn recip(self) -> Self {
                Self::ONE / self
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.re.is_finite() && self.im.is_finite()
            }
            #[inline]
            fn rand_unit<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
                Complex::new(
                    rng.random_range(-1.0..1.0) as $re,
                    rng.random_range(-1.0..1.0) as $re,
                )
            }
        }
    };
}

impl_scalar_complex!(f32);
impl_scalar_complex!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn complex_field_axioms() {
        let a = C64::new(1.5, -2.25);
        let b = C64::new(-0.75, 4.0);
        let ab = a * b;
        assert!(close(ab.re, 1.5 * -0.75 - -2.25 * 4.0));
        assert!(close(ab.im, 1.5 * 4.0 + -2.25 * -0.75));
        let q = ab / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn complex_division_smith_stability() {
        // Naive division would overflow here; Smith's algorithm must not.
        let big = 1e300;
        let a = C64::new(big, big);
        let b = C64::new(big, big * 0.5);
        let q = a / b;
        assert!(q.re.is_finite() && q.im.is_finite());
        let back = q * b;
        assert!((back.re - a.re).abs() / big < 1e-10);
    }

    #[test]
    fn complex_sqrt_principal_branch() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (0.0, -2.0),
            (-1.0, -1.0),
        ] {
            let z = C64::new(re, im);
            let s = z.sqrt();
            let sq = s * s;
            assert!(close(sq.re, re), "sq.re for {z:?}");
            assert!(close(sq.im, im), "sq.im for {z:?}");
            assert!(s.re >= 0.0, "principal branch for {z:?}");
        }
    }

    #[test]
    fn conj_and_abs2_agree() {
        let z = C64::new(3.0, -4.0);
        let zz = z * z.conj();
        assert!(close(zz.re, z.abs2()));
        assert!(close(zz.im, 0.0));
        assert!(close(z.abs(), 5.0));
    }

    #[test]
    fn real_scalar_is_its_own_conjugate() {
        let x: f64 = -7.5;
        assert_eq!(x.conj(), x);
        assert_eq!(Scalar::abs(x), 7.5);
        assert_eq!(x.abs2(), 56.25);
        assert_eq!(x.imag(), 0.0);
    }

    #[test]
    fn from_parts_roundtrip() {
        let z = C64::from_parts(2.0, -3.0);
        assert_eq!(z.real(), 2.0);
        assert_eq!(z.imag(), -3.0);
        let r = f64::from_parts(2.0, -3.0);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn rand_unit_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let z = C64::rand_unit(&mut rng);
            assert!(z.re.abs() < 1.0 && z.im.abs() < 1.0);
            let x = f64::rand_unit(&mut rng);
            assert!(x.abs() < 1.0);
        }
    }

    #[test]
    fn recip_is_inverse() {
        let z = C64::new(0.5, -1.25);
        let w = z * z.recip();
        assert!(close(w.re, 1.0) && close(w.im, 0.0));
    }
}
