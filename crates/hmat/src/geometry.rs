//! Minimal 3-D geometry: points and axis-aligned bounding boxes, used by the
//! cluster tree and the admissibility condition.

/// A point in 3-D space (the BEM collocation points / mesh vertices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Point from its three coordinates.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Coordinate by axis index (0 = x, 1 = y, otherwise z).
    pub fn coord(&self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, o: &Point3) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        let dz = self.z - o.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Point3,
    /// Componentwise maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Empty box ready for [`Aabb::grow`].
    pub fn empty() -> Self {
        Self {
            min: Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Smallest box containing all of `pts`.
    pub fn from_points<'a>(pts: impl IntoIterator<Item = &'a Point3>) -> Self {
        let mut b = Self::empty();
        for p in pts {
            b.grow(p);
        }
        b
    }

    /// Extend the box to contain `p`.
    pub fn grow(&mut self, p: &Point3) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.min.z = self.min.z.min(p.z);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
        self.max.z = self.max.z.max(p.z);
    }

    /// Box diagonal length (cluster diameter upper bound).
    pub fn diam(&self) -> f64 {
        if self.min.x > self.max.x {
            return 0.0;
        }
        self.min.dist(&self.max)
    }

    /// Longest axis (0, 1 or 2).
    pub fn longest_axis(&self) -> usize {
        let dx = self.max.x - self.min.x;
        let dy = self.max.y - self.min.y;
        let dz = self.max.z - self.min.z;
        if dx >= dy && dx >= dz {
            0
        } else if dy >= dz {
            1
        } else {
            2
        }
    }

    /// Euclidean distance between two boxes (0 when they intersect).
    pub fn dist(&self, o: &Aabb) -> f64 {
        let gap = |amin: f64, amax: f64, bmin: f64, bmax: f64| -> f64 {
            if bmin > amax {
                bmin - amax
            } else if amin > bmax {
                amin - bmax
            } else {
                0.0
            }
        };
        let dx = gap(self.min.x, self.max.x, o.min.x, o.max.x);
        let dy = gap(self.min.y, self.max.y, o.min.y, o.max.y);
        let dz = gap(self.min.z, self.max.z, o.min.z, o.max.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_from_points_and_diam() {
        let pts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 2.0, 2.0),
            Point3::new(0.5, 1.0, 0.0),
        ];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Point3::new(0.0, 0.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 2.0));
        assert!((b.diam() - 3.0).abs() < 1e-14);
        assert_eq!(b.longest_axis(), 1);
    }

    #[test]
    fn box_distance_disjoint_and_overlapping() {
        let a = Aabb::from_points(&[Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)]);
        let b = Aabb::from_points(&[Point3::new(4.0, 0.0, 0.0), Point3::new(5.0, 1.0, 1.0)]);
        assert!((a.dist(&b) - 3.0).abs() < 1e-14);
        let c = Aabb::from_points(&[Point3::new(0.5, 0.5, 0.5), Point3::new(2.0, 2.0, 2.0)]);
        assert_eq!(a.dist(&c), 0.0);
        // Diagonal offset.
        let d = Aabb::from_points(&[Point3::new(2.0, 2.0, 1.0), Point3::new(3.0, 3.0, 1.0)]);
        assert!((a.dist(&d) - (2.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn empty_box_diam_zero() {
        assert_eq!(Aabb::empty().diam(), 0.0);
    }
}
