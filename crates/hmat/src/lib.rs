//! Hierarchical matrices (H-matrices) for the `csolve` stack.
//!
//! This crate is the stand-in for the HMAT solver used in the reproduced
//! paper: a geometric cluster tree over the BEM surface points, a block
//! cluster structure with the standard `min(diam) ≤ η·dist` admissibility,
//! ACA-based assembly of admissible blocks, hierarchical arithmetic with
//! ε-recompression (including the *compressed AXPY* the paper's
//! compressed-Schur algorithms rely on), and an H-LU factorization with
//! forward/backward dense-panel solves.
//!
//! Everything operates in *cluster order* — the permutation produced by the
//! cluster tree. The coupled solver permutes the BEM unknowns once at setup,
//! so that the blockwise Schur assembly of the paper (by panels of columns
//! for multi-solve, by square blocks for multi-factorization) maps to
//! contiguous index ranges here.

// Index-based loops mirror the reference algorithms (LAPACK/CSparse style)
// and are kept for readability of the numeric kernels.
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod cluster;
pub mod factor;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod geometry;
pub mod h2;
pub mod hmatrix;

pub use cluster::{ClusterNodeId, ClusterTree};
pub use factor::HLu;
pub use geometry::{Aabb, Point3};
pub use h2::{H2Matrix, H2Options, H2Stats};
pub use hmatrix::{h_gemm, h_mul_to_lowrank, AssembleMethod, HMatrix, HOptions, HStats};

#[cfg(test)]
mod tests;
