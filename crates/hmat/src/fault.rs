//! Fault-injection hooks for the H-matrix layer (feature `fault-inject`).
//!
//! Compiled only under the `fault-inject` feature, these global switches let
//! the test harness force failure modes that are hard to reach with real
//! inputs — a binding rank cap in compression, or an H-LU that refuses to
//! factor — and assert that they surface as structured `Err`s rather than
//! panics or silently degraded answers. Production builds carry none of this.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Rank cap imposed on [`crate::HMatrix::try_axpy_dense_block`] compressions.
/// `usize::MAX` means "no fault armed".
static RANK_CAP: AtomicUsize = AtomicUsize::new(usize::MAX);

/// One-shot flag making the next [`crate::HLu::factor`] call fail.
static FACTOR_FAIL: AtomicBool = AtomicBool::new(false);

/// Arm a rank cap: subsequent compressed AXPYs through
/// `try_axpy_dense_block` may not exceed rank `cap` and will return
/// [`csolve_common::Error::CompressionFailure`] when the cap is binding.
pub fn arm_rank_cap(cap: usize) {
    RANK_CAP.store(cap, Ordering::SeqCst);
}

/// Arm a one-shot failure of the next `HLu::factor` call.
pub fn arm_factor_failure() {
    FACTOR_FAIL.store(true, Ordering::SeqCst);
}

/// Disarm all H-matrix faults.
pub fn disarm() {
    RANK_CAP.store(usize::MAX, Ordering::SeqCst);
    FACTOR_FAIL.store(false, Ordering::SeqCst);
}

/// Current rank cap (`usize::MAX` when disarmed).
pub(crate) fn rank_cap() -> usize {
    RANK_CAP.load(Ordering::SeqCst)
}

/// Consume the one-shot factor-failure flag.
pub(crate) fn take_factor_failure() -> bool {
    FACTOR_FAIL.swap(false, Ordering::SeqCst)
}
