//! Cross-module tests for the H-matrix layer: every hierarchical operation
//! is validated against its dense counterpart on kernels with genuine
//! low-rank off-diagonal structure.

use csolve_common::{ByteSized, Scalar, C64};
use csolve_dense::{gemm_into, Mat, Op};
use csolve_lowrank::LowRank;
use rand::SeedableRng;

use crate::cluster::ClusterTree;
use crate::factor::HLu;
use crate::geometry::Point3;
use crate::hmatrix::{h_gemm, h_mul_to_lowrank, AssembleMethod, HMatrix, HOptions};

/// Points on a square surface patch — a stand-in for a BEM surface mesh.
fn surface_points(n_side: usize) -> Vec<Point3> {
    let mut pts = Vec::with_capacity(n_side * n_side);
    for i in 0..n_side {
        for j in 0..n_side {
            let x = i as f64 / n_side as f64;
            let y = j as f64 / n_side as f64;
            // Gentle curvature so the geometry is 3-D.
            pts.push(Point3::new(x, y, 0.1 * (x * x + y * y)));
        }
    }
    pts
}

/// Smooth Green-like kernel with a diagonal shift: symmetric positive-ish,
/// hierarchically low-rank off the diagonal.
fn kernel_entry(pts: &[Point3], shift: f64, i: usize, j: usize) -> f64 {
    if i == j {
        shift
    } else {
        let r = pts[i].dist(&pts[j]);
        1.0 / (4.0 * std::f64::consts::PI * (r + 0.05))
    }
}

fn build_test_h(
    n_side: usize,
    eps: f64,
    method: AssembleMethod,
) -> (ClusterTree, HMatrix<f64>, Mat<f64>) {
    let pts = surface_points(n_side);
    let n = pts.len();
    let tree = ClusterTree::build(&pts, 24);
    let shift = n as f64;
    // Oracle in cluster order.
    let perm = tree.perm.clone();
    let p2 = pts.clone();
    let oracle = move |i: usize, j: usize| kernel_entry(&p2, shift, perm[i], perm[j]);
    let opts = HOptions {
        eps,
        // Generous admissibility: at these (test-sized) point counts the
        // standard eta = 2 leaves most blocks in the near field.
        eta: 6.0,
        max_rank: 64,
        method,
    };
    let h = HMatrix::assemble_root(&tree, &tree, &oracle, &opts);
    let dense = Mat::from_fn(n, n, |i, j| {
        kernel_entry(&pts, shift, tree.perm[i], tree.perm[j])
    });
    (tree, h, dense)
}

fn rel_err(got: &Mat<f64>, want: &Mat<f64>) -> f64 {
    let mut d = got.clone();
    d.axpy(-1.0, want);
    d.norm_fro() / want.norm_fro()
}

#[test]
fn assembly_approximates_kernel_and_compresses() {
    for method in [AssembleMethod::Aca, AssembleMethod::Direct] {
        // Large enough that the block structure has plenty of admissible
        // (well separated) blocks; loose eps as in the paper's regime.
        let (_, h, dense) = build_test_h(24, 1e-4, method);
        let err = rel_err(&h.to_dense(), &dense);
        assert!(err < 1e-3, "{method:?}: rel err {err:.3e}");
        let st = h.stats();
        assert!(st.lowrank_leaves > 0, "{method:?}: no compression happened");
        // At test-scale point counts the near field dominates; the asymptotic
        // O(n·r·log n) gain is exercised by the capacity benchmarks instead.
        assert!(
            st.bytes < st.dense_bytes * 4 / 5,
            "{method:?}: bytes {} vs dense {}",
            st.bytes,
            st.dense_bytes
        );
        assert_eq!(h.byte_size(), st.bytes);
    }
}

#[test]
fn mul_dense_matches_dense() {
    let (_, h, dense) = build_test_h(12, 1e-9, AssembleMethod::Aca);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let b = Mat::<f64>::random(dense.ncols(), 5, &mut rng);
    let mut c = Mat::<f64>::random(dense.nrows(), 5, &mut rng);
    let c0 = c.clone();
    h.mul_dense(2.0, b.as_ref(), 0.5, c.as_mut());
    let mut want = gemm_into(dense.as_ref(), Op::NoTrans, b.as_ref(), Op::NoTrans);
    want.scale(2.0);
    let mut c0h = c0;
    c0h.scale(0.5);
    want.axpy(1.0, &c0h);
    assert!(rel_err(&c, &want) < 1e-6);
}

#[test]
fn mul_dense_t_and_dense_mul_h_match() {
    let (_, h, dense) = build_test_h(10, 1e-9, AssembleMethod::Aca);
    let n = dense.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let b = Mat::<f64>::random(n, 4, &mut rng);
    // Hᵀ·B
    let mut c = Mat::<f64>::zeros(n, 4);
    h.mul_dense_t(1.0, b.as_ref(), 0.0, c.as_mut());
    let want = gemm_into(dense.as_ref(), Op::Trans, b.as_ref(), Op::NoTrans);
    assert!(rel_err(&c, &want) < 1e-6);
    // D·H
    let d = Mat::<f64>::random(3, n, &mut rng);
    let mut out = Mat::<f64>::zeros(3, n);
    h.dense_mul_h(1.0, d.as_ref(), 0.0, out.as_mut());
    let want = gemm_into(d.as_ref(), Op::NoTrans, dense.as_ref(), Op::NoTrans);
    assert!(rel_err(&out, &want) < 1e-6);
}

#[test]
fn matvec_matches() {
    let (_, h, dense) = build_test_h(9, 1e-9, AssembleMethod::Aca);
    let n = dense.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    h.matvec(1.0, &x, 0.0, &mut y);
    let mut want = vec![0.0; n];
    csolve_dense::matvec(1.0, dense.as_ref(), Op::NoTrans, &x, 0.0, &mut want);
    let err: f64 = y
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-6 * n as f64);
}

#[test]
fn axpy_dense_block_various_offsets() {
    let (_, mut h, mut dense) = build_test_h(10, 1e-9, AssembleMethod::Aca);
    let n = dense.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // A few panels at awkward offsets crossing child boundaries.
    for &(r0, c0, pm, pn) in &[
        (0usize, 0usize, n, 16usize),
        (7, n - 20, 33, 20),
        (n / 2 - 5, n / 2 - 5, 11, 11),
        (0, 0, 1, 1),
    ] {
        let panel = Mat::<f64>::random(pm, pn, &mut rng);
        h.axpy_dense_block(0.7, r0, c0, panel.as_ref(), 1e-10);
        let mut dst = dense.view_mut(r0..r0 + pm, c0..c0 + pn);
        dst.axpy(0.7, panel.as_ref());
    }
    assert!(rel_err(&h.to_dense(), &dense) < 1e-6);
}

#[test]
fn deferred_axpy_with_leaf_flush_matches_eager() {
    // The deferred path (formal adds, recompression only when a leaf's
    // accumulated rank exceeds flush_rank, final recompress_leaves) must
    // approximate the same matrix as the eager path and end up truncated.
    // Assembly is deterministic, so two builds give identical accumulators.
    let (_, mut eager, _) = build_test_h(10, 1e-9, AssembleMethod::Aca);
    let (_, mut deferred, _) = build_test_h(10, 1e-9, AssembleMethod::Aca);
    let mut dense = eager.to_dense();
    let n = dense.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for &(r0, c0, pm, pn) in &[
        (0usize, 0usize, n, 16usize),
        (7, n - 20, 33, 20),
        (n / 2 - 5, 3, 11, 40),
        (1, 1, 30, 30),
    ] {
        let panel = Mat::<f64>::random(pm, pn, &mut rng);
        eager
            .try_axpy_dense_block(0.7, r0, c0, panel.as_ref(), 1e-10)
            .unwrap();
        deferred
            .try_axpy_dense_block_deferred(0.7, r0, c0, panel.as_ref(), 1e-10, 12)
            .unwrap();
        let mut dst = dense.view_mut(r0..r0 + pm, c0..c0 + pn);
        dst.axpy(0.7, panel.as_ref());
    }
    // Before the flush the deferred accumulator may carry extra formal rank.
    let formal_bytes = deferred.byte_size();
    deferred.recompress_leaves(1e-10);
    assert!(
        deferred.byte_size() <= formal_bytes,
        "recompress_leaves must not grow the accumulator"
    );
    assert!(rel_err(&eager.to_dense(), &dense) < 1e-6);
    assert!(rel_err(&deferred.to_dense(), &dense) < 1e-6);
    // Flushing again changes nothing: per-singular-value truncation is
    // idempotent.
    let once = deferred.to_dense();
    let rank_once = deferred.stats().max_rank;
    deferred.recompress_leaves(1e-10);
    assert_eq!(deferred.stats().max_rank, rank_once);
    assert!(rel_err(&deferred.to_dense(), &once) < 1e-12);
}

#[test]
fn axpy_lowrank_full_shape() {
    let (_, mut h, mut dense) = build_test_h(9, 1e-9, AssembleMethod::Aca);
    let n = dense.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let u = Mat::<f64>::random(n, 3, &mut rng);
    let v = Mat::<f64>::random(n, 3, &mut rng);
    let lr = LowRank::new(u, v);
    h.axpy_lowrank(-1.5, &lr, 1e-10);
    dense.axpy(-1.5, &lr.to_dense());
    assert!(rel_err(&h.to_dense(), &dense) < 1e-6);
}

#[test]
fn to_lowrank_of_admissible_product() {
    let (_, h, dense) = build_test_h(8, 1e-8, AssembleMethod::Aca);
    // The full matrix is not low-rank (diagonal dominates), but the
    // reconstruction must still meet the tolerance loosely at high eps.
    let lr = h.to_lowrank(1e-9);
    let err = rel_err(&lr.to_dense(), &dense);
    assert!(err < 1e-6, "err {err:.3e}");
}

#[test]
fn h_gemm_matches_dense_product() {
    let (_, ha, da) = build_test_h(9, 1e-9, AssembleMethod::Aca);
    let (_, hb, db) = build_test_h(9, 1e-9, AssembleMethod::Aca);
    let (_, mut hc, mut dc) = build_test_h(9, 1e-9, AssembleMethod::Aca);
    h_gemm(-1.0, &ha, &hb, &mut hc, 1e-10);
    let prod = gemm_into(da.as_ref(), Op::NoTrans, db.as_ref(), Op::NoTrans);
    dc.axpy(-1.0, &prod);
    assert!(rel_err(&hc.to_dense(), &dc) < 1e-5);
}

#[test]
fn h_mul_to_lowrank_matches() {
    let (_, ha, da) = build_test_h(8, 1e-9, AssembleMethod::Aca);
    let (_, hb, db) = build_test_h(8, 1e-9, AssembleMethod::Aca);
    let p = h_mul_to_lowrank(&ha, &hb, 1e-9);
    let want = gemm_into(da.as_ref(), Op::NoTrans, db.as_ref(), Op::NoTrans);
    assert!(rel_err(&p.to_dense(), &want) < 1e-5);
}

#[test]
fn hlu_solves_real_system() {
    let (_, h, dense) = build_test_h(12, 1e-10, AssembleMethod::Aca);
    let n = dense.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let x_exact = Mat::<f64>::random(n, 3, &mut rng);
    let b = gemm_into(dense.as_ref(), Op::NoTrans, x_exact.as_ref(), Op::NoTrans);
    let f = HLu::factor(h, 1e-12).unwrap();
    let mut x = b.clone();
    f.solve_in_place(x.as_mut());
    let err = rel_err(&x, &x_exact);
    assert!(err < 1e-6, "solve err {err:.3e}");
}

#[test]
fn hlu_compressed_factor_still_accurate_at_loose_eps() {
    // The paper's regime: eps = 1e-3 compression, relative error of the
    // solution stays below eps.
    let (_, h, dense) = build_test_h(14, 1e-3, AssembleMethod::Aca);
    let n = dense.nrows();
    let x_exact = Mat::<f64>::from_fn(n, 1, |i, _| 1.0 + (i as f64 * 0.01).cos());
    let b = gemm_into(dense.as_ref(), Op::NoTrans, x_exact.as_ref(), Op::NoTrans);
    let st_before = h.stats();
    let f = HLu::factor(h, 1e-3).unwrap();
    let mut x = b.clone();
    f.solve_in_place(x.as_mut());
    let err = rel_err(&x, &x_exact);
    assert!(err < 1e-3, "solve err {err:.3e}");
    assert!(st_before.bytes < st_before.dense_bytes);
}

#[test]
fn hlu_complex_system() {
    // Complex symmetric kernel (oscillatory Green function) + shift.
    let pts = surface_points(10);
    let n = pts.len();
    let tree = ClusterTree::build(&pts, 16);
    let perm = tree.perm.clone();
    let p2 = pts.clone();
    let kappa = 3.0;
    let entry = move |pi: usize, pj: usize| -> C64 {
        if pi == pj {
            C64::new(n as f64, 0.3 * n as f64)
        } else {
            let r = p2[pi].dist(&p2[pj]);
            let amp = 1.0 / (4.0 * std::f64::consts::PI * (r + 0.05));
            C64::new(amp * (kappa * r).cos(), amp * (kappa * r).sin())
        }
    };
    let e2 = entry.clone();
    let oracle = move |i: usize, j: usize| e2(perm[i], perm[j]);
    let opts = HOptions {
        eps: 1e-9,
        ..Default::default()
    };
    let h = HMatrix::assemble_root(&tree, &tree, &oracle, &opts);
    let dense = Mat::from_fn(n, n, |i, j| entry(tree.perm[i], tree.perm[j]));
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let x_exact = Mat::<C64>::random(n, 2, &mut rng);
    let b = gemm_into(dense.as_ref(), Op::NoTrans, x_exact.as_ref(), Op::NoTrans);
    let f = HLu::factor(h, 1e-11).unwrap();
    let mut x = b;
    f.solve_in_place(x.as_mut());
    let mut d = x;
    d.axpy(-C64::ONE, &x_exact);
    let err = d.norm_fro() / x_exact.norm_fro();
    assert!(err < 1e-6, "complex solve err {err:.3e}");
}

#[test]
fn compress_dense_roundtrip() {
    let pts = surface_points(16);
    let n = pts.len();
    let tree = ClusterTree::build(&pts, 16);
    let dense = Mat::from_fn(n, n, |i, j| {
        kernel_entry(&pts, n as f64, tree.perm[i], tree.perm[j])
    });
    let opts = HOptions {
        eps: 1e-6,
        ..Default::default()
    };
    let h = HMatrix::compress_dense(&tree, &tree, &dense, &opts);
    assert!(rel_err(&h.to_dense(), &dense) < 1e-4);
    let st = h.stats();
    assert!(
        st.bytes < st.dense_bytes,
        "bytes {} vs dense {}",
        st.bytes,
        st.dense_bytes
    );
}

#[test]
fn deferred_axpy_of_zero_panel_is_inert() {
    // An exactly-zero panel must leave the accumulator bit-for-bit
    // untouched — in particular it must not trigger a tol = ε·0
    // compression or inflate any leaf's formal rank.
    let (_, mut h, dense) = build_test_h(10, 1e-8, AssembleMethod::Aca);
    let n = dense.nrows();
    let before_bytes = h.byte_size();
    let before = h.to_dense();
    let zero = Mat::<f64>::zeros(40, 40);
    for &(r0, c0) in &[(0usize, 0usize), (n - 40, 3), (n / 2, n / 2)] {
        h.try_axpy_dense_block_deferred(1.0, r0, c0, zero.as_ref(), 1e-8, 8)
            .unwrap();
    }
    assert_eq!(h.byte_size(), before_bytes, "zero panel changed storage");
    assert!(rel_err(&h.to_dense(), &before) < 1e-15);
}

#[test]
fn deferred_axpy_exact_cancellation_normalizes_to_rank_zero() {
    // +P then −P with a flush threshold small enough to force a
    // recompression of the cancelled sum: the accumulated leaf must
    // normalize to its pre-update state (no zero-norm factors kept alive
    // by a tolerance of ε·0).
    let (_, mut h, _) = build_test_h(10, 1e-8, AssembleMethod::Aca);
    let before = h.to_dense();
    let before_bytes = h.byte_size();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let n = before.nrows();
    let panel = Mat::<f64>::random(64, 48, &mut rng);
    // flush_rank = 0: every deferred AXPY recompresses immediately, so the
    // second (cancelling) update drives touched leaves through the
    // zero-norm branch.
    h.try_axpy_dense_block_deferred(1.0, n - 64, 0, panel.as_ref(), 1e-8, 0)
        .unwrap();
    h.try_axpy_dense_block_deferred(-1.0, n - 64, 0, panel.as_ref(), 1e-8, 0)
        .unwrap();
    h.recompress_leaves(1e-8);
    assert!(rel_err(&h.to_dense(), &before) < 1e-9);
    assert!(
        h.byte_size() <= before_bytes,
        "cancelled updates left residual factors: {} > {}",
        h.byte_size(),
        before_bytes
    );
}

#[test]
fn recompress_leaves_collapses_zero_norm_formal_rank() {
    // A leaf carrying positive formal rank but zero Frobenius mass (e.g.
    // cancelled contributions accumulated under a high flush threshold)
    // must come out of recompress_leaves at rank 0.
    let (_, mut h, _) = build_test_h(10, 1e-8, AssembleMethod::Aca);
    let before = h.to_dense();
    let mut rng = rand::rngs::StdRng::seed_from_u64(78);
    let n = before.nrows();
    let panel = Mat::<f64>::random(64, 48, &mut rng);
    // Huge flush_rank: both updates stay formal until the explicit flush.
    h.try_axpy_dense_block_deferred(1.0, n - 64, 0, panel.as_ref(), 1e-8, usize::MAX)
        .unwrap();
    h.try_axpy_dense_block_deferred(-1.0, n - 64, 0, panel.as_ref(), 1e-8, usize::MAX)
        .unwrap();
    let formal_bytes = h.byte_size();
    h.recompress_leaves(1e-8);
    assert!(h.byte_size() <= formal_bytes);
    assert!(rel_err(&h.to_dense(), &before) < 1e-9);
}

mod h2_vs_flat {
    //! Property: the nested-basis H² representation and the flat H-matrix
    //! agree to the configured tolerance on the same kernel problem — at
    //! assembly, and after an arbitrary sequence of deferred dense-block
    //! AXPY updates driven through both representations identically.

    use proptest::prelude::*;

    use super::*;
    use crate::h2::{H2Matrix, H2Options};

    fn flat_and_h2(n_side: usize, eps: f64) -> (HMatrix<f64>, H2Matrix<f64>, Mat<f64>) {
        // Assembly is deterministic, so two builds from the same inputs give
        // the same flat H-matrix: one stays flat, one becomes the H².
        let (_, flat, dense) = build_test_h(n_side, eps, AssembleMethod::Aca);
        let (tree, for_h2, _) = build_test_h(n_side, eps, AssembleMethod::Aca);
        let opts = H2Options {
            eps,
            eta: 6.0,
            max_rank: 64,
        };
        let h2 = H2Matrix::from_flat(&tree, for_h2, &opts);
        (flat, h2, dense)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn h2_agrees_with_flat_h_under_deferred_updates(
            n_side in 10usize..15,
            eps_exp in 4u32..9,
            n_updates in 0usize..5,
            seed in 0u64..1_000,
        ) {
            let eps = 10f64.powi(-(eps_exp as i32));
            let (mut flat, mut h2, dense) = flat_and_h2(n_side, eps);
            let n = dense.nrows();

            // Both representations start within eps of the same kernel, so
            // they agree with each other to a small multiple of eps.
            let d0 = rel_err(&h2.to_dense(), &flat.to_dense());
            prop_assert!(
                d0 < 100.0 * eps,
                "assembly: |H2 - H| = {d0:.3e} at eps {eps:.0e}"
            );

            // Identical deferred update streams through both.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let flush_rank = 8;
            for k in 0..n_updates {
                let rows = 16 + 8 * (k % 3);
                let cols = 12 + 4 * (k % 4);
                let panel = Mat::<f64>::random(rows, cols, &mut rng);
                let r0 = (seed as usize + 37 * k) % (n - rows);
                let c0 = (seed as usize / 7 + 53 * k) % (n - cols);
                let alpha = if k % 2 == 0 { 1.0 } else { -0.5 };
                flat.try_axpy_dense_block_deferred(
                    alpha, r0, c0, panel.as_ref(), eps, flush_rank,
                ).unwrap();
                h2.try_axpy_dense_block_deferred(
                    alpha, r0, c0, panel.as_ref(), eps, flush_rank,
                ).unwrap();
            }
            flat.recompress_leaves(eps);
            h2.recompress(eps);

            let d = rel_err(&h2.to_dense(), &flat.to_dense());
            prop_assert!(
                d < 100.0 * eps,
                "after {n_updates} updates: |H2 - H| = {d:.3e} at eps {eps:.0e}"
            );
        }
    }
}
