//! Nested-basis (H² / recursive-skeletonization) matrices.
//!
//! A flat H-matrix stores every admissible block `(i, j)` as an independent
//! factorization `U_i·V_jᵀ` — `O(k·N·log N)` memory because each cluster pays
//! for its basis once *per block* it appears in. The H² format of
//! Hackbusch/Börm (and the recursive skeletonization of Ho & Greengard)
//! removes that redundancy: every cluster `i` owns a single *nested* row
//! basis, every cluster `j` a column basis, and an admissible block is
//! reduced to a tiny coupling matrix `S_ij` between the two cluster
//! *skeletons*. Nestedness means an internal node's basis is expressed in
//! its children's bases through a small transfer matrix, so storage
//! approaches `O(k·N)`.
//!
//! This module implements the format as a *hybrid* over the existing
//! [`HMatrix`]:
//!
//! * near-field (inadmissible) blocks stay dense inside an internal flat
//!   H-matrix, which also buffers *pending* low-rank updates from deferred
//!   compressed AXPYs — all accumulation traffic reuses
//!   [`HMatrix::try_axpy_dense_block_deferred`] unchanged;
//! * the far field lives in `NestedFar`: per-node skeleton index sets,
//!   leaf interpolation matrices, internal transfer matrices, and one
//!   coupling matrix per admissible block.
//!
//! Skeletons are chosen by interpolative decomposition (row-ID via the
//! column-pivoted QR of `csolve-lowrank`), with the classical
//! ancestor-inheritance rule: a node's ID sees its own far blocks *and*
//! every ancestor's, restricted to its rows, so the resulting bases are
//! nested by construction. All passes are sequential and run at
//! deterministic points (assembly, flush, factor), preserving the
//! bitwise-determinism-across-threads contract of the driver.
//!
//! Factorization goes through the flat layer: [`H2Matrix::into_flat`]
//! expands the nested representation back into ordinary low-rank leaves and
//! the existing H-LU takes over. The nested format is a *storage* format
//! here (the paper's capacity axis), not a factorization format.

use std::collections::HashMap;

use csolve_common::{ByteSized, RealScalar, Result, Scalar};
use csolve_dense::{gemm, gemm_into, Mat, MatRef, Op};
use csolve_lowrank::{col_piv_qr, qr_in_place, LowRank};

use crate::cluster::{ClusterNodeId, ClusterTree};
use crate::hmatrix::{AssembleMethod, HKind, HMatrix, HOptions};

/// Assembly / recompression options for the nested-basis format.
#[derive(Debug, Clone, Copy)]
pub struct H2Options {
    /// Relative compression tolerance ε (skeleton selection and flat-layer
    /// recompression).
    pub eps: f64,
    /// Admissibility parameter η for the underlying block structure.
    pub eta: f64,
    /// Rank / skeleton-size cap.
    pub max_rank: usize,
}

impl Default for H2Options {
    fn default() -> Self {
        Self {
            eps: 1e-3,
            eta: 2.0,
            max_rank: 256,
        }
    }
}

/// Topology snapshot of the cluster tree (both sides share one tree: the
/// Schur complement and the BEM operator are square in cluster order).
#[derive(Debug, Clone, Copy)]
struct H2Node {
    begin: usize,
    end: usize,
    children: Option<(usize, usize)>,
}

impl H2Node {
    fn len(&self) -> usize {
        self.end - self.begin
    }
}

/// One side's nested basis: per-node skeletons plus the operator expressing
/// the node's rows (columns) in terms of them.
struct Basis<T> {
    /// Global (cluster-order) skeleton indices per node.
    skel: Vec<Vec<usize>>,
    /// Per-node basis operator.
    op: Vec<BasisOp<T>>,
}

enum BasisOp<T> {
    /// Node takes part in no far-field interaction.
    None,
    /// Leaf interpolation `P` (`len × k`, `P[skel_local, :] = I`).
    Leaf(Mat<T>),
    /// Internal transfer `E` (`(k_left + k_right) × k`): node-skeleton
    /// coefficients expressed over the concatenated children skeletons.
    Transfer(Mat<T>),
}

impl<T: Scalar> Basis<T> {
    fn empty(n_nodes: usize) -> Self {
        Self {
            skel: vec![Vec::new(); n_nodes],
            op: (0..n_nodes).map(|_| BasisOp::None).collect(),
        }
    }

    fn byte_size(&self) -> usize {
        let skel: usize = self
            .skel
            .iter()
            .map(|s| s.len() * std::mem::size_of::<usize>())
            .sum();
        let ops: usize = self
            .op
            .iter()
            .map(|o| match o {
                BasisOp::None => 0,
                BasisOp::Leaf(m) | BasisOp::Transfer(m) => m.byte_size(),
            })
            .sum();
        skel + ops
    }
}

/// A single admissible block reduced to its skeleton coupling.
struct FarBlock<T> {
    /// Row cluster node id.
    rn: usize,
    /// Column cluster node id.
    cn: usize,
    /// Coupling `S` (`k_row × k_col`): the block is `≈ Ũ_rn · S · Ṽ_cnᵀ`
    /// with `Ũ`/`Ṽ` the expanded nested bases.
    s: Mat<T>,
}

/// The far field in nested form.
struct NestedFar<T> {
    row: Basis<T>,
    col: Basis<T>,
    blocks: Vec<FarBlock<T>>,
}

impl<T: Scalar> NestedFar<T> {
    fn empty(n_nodes: usize) -> Self {
        Self {
            row: Basis::empty(n_nodes),
            col: Basis::empty(n_nodes),
            blocks: Vec::new(),
        }
    }

    fn byte_size(&self) -> usize {
        self.row.byte_size()
            + self.col.byte_size()
            + self
                .blocks
                .iter()
                .map(|b| b.s.byte_size() + 2 * std::mem::size_of::<usize>())
                .sum::<usize>()
    }
}

/// Storage statistics of an [`H2Matrix`] (the fig10-style capacity studies).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct H2Stats {
    /// Number of admissible blocks held in nested form.
    pub far_blocks: usize,
    /// Bytes of the nested bases (interpolation + transfer + skeletons).
    pub basis_bytes: usize,
    /// Bytes of the per-block coupling matrices.
    pub coupling_bytes: usize,
    /// Bytes of the flat layer (near-field dense blocks + any pending
    /// low-rank updates not yet folded into the nested form).
    pub flat_bytes: usize,
    /// Total bytes.
    pub bytes: usize,
    /// Largest skeleton size over all nodes.
    pub max_skel: usize,
}

/// A square nested-basis matrix over a cluster tree.
///
/// See the module docs for the structure. The public surface mirrors what
/// the Schur accumulator needs: assembly from an entry oracle, deferred
/// compressed AXPY, byte accounting, a full recompression (flush), and
/// conversion to a flat [`HMatrix`] for H-LU factorization.
pub struct H2Matrix<T: Scalar> {
    /// Near field + pending far-field updates.
    flat: HMatrix<T>,
    /// Skeletonized far field.
    far: NestedFar<T>,
    nodes: Vec<H2Node>,
    root: usize,
    max_rank: usize,
}

impl<T: Scalar> ByteSized for H2Matrix<T> {
    fn byte_size(&self) -> usize {
        self.flat.byte_size() + self.far.byte_size()
    }
}

impl<T: Scalar> H2Matrix<T> {
    /// Assemble from an entry oracle in cluster order (ACA on admissible
    /// blocks, then immediate sparsification into nested form).
    pub fn assemble(
        tree: &ClusterTree,
        oracle: &(impl Fn(usize, usize) -> T + Sync),
        opts: &H2Options,
    ) -> Self {
        let hopts = HOptions {
            eps: opts.eps,
            eta: opts.eta,
            max_rank: opts.max_rank,
            method: AssembleMethod::Aca,
        };
        let flat = HMatrix::assemble_root(tree, tree, oracle, &hopts);
        Self::from_flat(tree, flat, opts)
    }

    /// Compress an already materialized dense matrix (cluster order).
    pub fn compress_dense(tree: &ClusterTree, dense: &Mat<T>, opts: &H2Options) -> Self {
        let hopts = HOptions {
            eps: opts.eps,
            eta: opts.eta,
            max_rank: opts.max_rank,
            method: AssembleMethod::Direct,
        };
        let flat = HMatrix::compress_dense(tree, tree, dense, &hopts);
        Self::from_flat(tree, flat, opts)
    }

    /// Wrap an assembled flat H-matrix and sparsify its admissible leaves
    /// into nested form.
    pub fn from_flat(tree: &ClusterTree, flat: HMatrix<T>, opts: &H2Options) -> Self {
        assert_eq!(flat.nrows(), tree.len());
        assert_eq!(flat.ncols(), tree.len());
        let nodes: Vec<H2Node> = (0..tree_node_count(tree))
            .map(|id| {
                let n = tree.node(id);
                H2Node {
                    begin: n.begin,
                    end: n.end,
                    children: n.children,
                }
            })
            .collect();
        let mut me = Self {
            flat,
            far: NestedFar::empty(nodes.len()),
            nodes,
            root: tree.root(),
            max_rank: opts.max_rank.max(1),
        };
        me.sparsify(T::Real::from_f64_real(opts.eps));
        me
    }

    /// Number of rows (= columns).
    pub fn nrows(&self) -> usize {
        self.flat.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.flat.ncols()
    }

    /// Deferred compressed AXPY of a dense panel at `(r0, c0)` — lands in
    /// the flat layer as a pending update (see
    /// [`HMatrix::try_axpy_dense_block_deferred`]); the nested form is
    /// untouched until the next [`H2Matrix::recompress`].
    pub fn try_axpy_dense_block_deferred(
        &mut self,
        alpha: T,
        r0: usize,
        c0: usize,
        panel: MatRef<'_, T>,
        eps: T::Real,
        flush_rank: usize,
    ) -> Result<()> {
        self.flat
            .try_axpy_dense_block_deferred(alpha, r0, c0, panel, eps, flush_rank)
    }

    /// Full flush: fold every pending update and the current nested form
    /// together, then re-skeletonize. Sequential and deterministic.
    pub fn recompress(&mut self, eps: T::Real) {
        self.expand_all(eps);
        self.flat.recompress_leaves(eps);
        self.sparsify(eps);
    }

    /// Expand the nested representation into the flat layer and return the
    /// plain H-matrix (for H-LU factorization).
    pub fn into_flat(mut self, eps: T::Real) -> HMatrix<T> {
        self.expand_all(eps);
        self.flat
    }

    /// Materialize as dense (tests / small problems only).
    pub fn to_dense(&self) -> Mat<T> {
        let mut d = self.flat.to_dense();
        let mut rmemo = HashMap::new();
        let mut cmemo = HashMap::new();
        for b in &self.far.blocks {
            let ur = expand_basis(&self.far.row, &self.nodes, b.rn, &mut rmemo);
            let vc = expand_basis(&self.far.col, &self.nodes, b.cn, &mut cmemo);
            if b.s.ncols() == 0 || b.s.nrows() == 0 {
                continue;
            }
            let us = gemm_into(ur.as_ref(), Op::NoTrans, b.s.as_ref(), Op::NoTrans);
            let (rn, cn) = (&self.nodes[b.rn], &self.nodes[b.cn]);
            let dst = d.view_mut(rn.begin..rn.end, cn.begin..cn.end);
            gemm(
                T::ONE,
                us.as_ref(),
                Op::NoTrans,
                vc.as_ref(),
                Op::Trans,
                T::ONE,
                dst,
            );
        }
        d
    }

    /// Storage statistics.
    pub fn stats(&self) -> H2Stats {
        let max_skel = self
            .far
            .row
            .skel
            .iter()
            .chain(self.far.col.skel.iter())
            .map(|s| s.len())
            .max()
            .unwrap_or(0);
        let basis_bytes = self.far.row.byte_size() + self.far.col.byte_size();
        let coupling_bytes: usize = self.far.blocks.iter().map(|b| b.s.byte_size()).sum();
        let flat_bytes = self.flat.byte_size();
        H2Stats {
            far_blocks: self.far.blocks.len(),
            basis_bytes,
            coupling_bytes,
            flat_bytes,
            bytes: basis_bytes + coupling_bytes + flat_bytes,
            max_skel,
        }
    }

    /// Move every admissible leaf of the flat layer into nested form: choose
    /// skeletons by interpolative decomposition with ancestor inheritance,
    /// store leaf interpolation / internal transfer matrices and per-block
    /// couplings, and zero the flat leaves.
    fn sparsify(&mut self, eps: T::Real) {
        let mut blocks: Vec<(usize, usize, LowRank<T>)> = Vec::new();
        extract_far(
            &mut self.flat,
            &self.nodes,
            self.root,
            self.root,
            &mut blocks,
        );
        let nn = self.nodes.len();
        self.far = NestedFar::empty(nn);
        if blocks.is_empty() {
            return;
        }

        // Per-node weighted side panels: for the row pass of block U·Vᵀ the
        // row space is spanned by U·R_vᵀ (V = Q_v·R_v), which has the same
        // Gram structure as the block's rows at a fraction of the width.
        let mut row_w: Vec<Vec<Mat<T>>> = vec![Vec::new(); nn];
        let mut col_w: Vec<Vec<Mat<T>>> = vec![Vec::new(); nn];
        for (rn, cn, lr) in &blocks {
            row_w[*rn].push(weighted(&lr.u, &lr.v));
            col_w[*cn].push(weighted(&lr.v, &lr.u));
        }

        let mut row_basis = Basis::empty(nn);
        let mut col_basis = Basis::empty(nn);
        let root = self.root;
        let rootlen = self.nodes[root].len();
        build_basis(
            &self.nodes,
            root,
            Mat::zeros(rootlen, 0),
            &row_w,
            eps,
            self.max_rank,
            &mut row_basis,
        );
        build_basis(
            &self.nodes,
            root,
            Mat::zeros(rootlen, 0),
            &col_w,
            eps,
            self.max_rank,
            &mut col_basis,
        );

        // Couplings: restrict each block's factors to the two skeletons.
        let mut out = Vec::with_capacity(blocks.len());
        for (rn, cn, lr) in blocks {
            let ug = gather_rows(&lr.u, &row_basis.skel[rn], self.nodes[rn].begin);
            let vg = gather_rows(&lr.v, &col_basis.skel[cn], self.nodes[cn].begin);
            let s = if ug.ncols() == 0 {
                Mat::zeros(ug.nrows(), vg.nrows())
            } else {
                gemm_into(ug.as_ref(), Op::NoTrans, vg.as_ref(), Op::Trans)
            };
            out.push(FarBlock { rn, cn, s });
        }
        self.far = NestedFar {
            row: row_basis,
            col: col_basis,
            blocks: out,
        };
    }

    /// Fold the nested far field back into the flat layer's admissible
    /// leaves (compressed AXPY per block), leaving the nested form empty.
    fn expand_all(&mut self, eps: T::Real) {
        if self.far.blocks.is_empty() {
            return;
        }
        let mut rmemo = HashMap::new();
        let mut cmemo = HashMap::new();
        let mut exp: HashMap<(usize, usize), LowRank<T>> = HashMap::new();
        for b in self.far.blocks.drain(..) {
            let ur = expand_basis(&self.far.row, &self.nodes, b.rn, &mut rmemo);
            let vc = expand_basis(&self.far.col, &self.nodes, b.cn, &mut cmemo);
            let lr = if b.s.ncols() == 0 || b.s.nrows() == 0 {
                LowRank::zeros(ur.nrows(), vc.nrows())
            } else {
                let us = gemm_into(ur.as_ref(), Op::NoTrans, b.s.as_ref(), Op::NoTrans);
                LowRank::new(us, vc)
            };
            exp.insert((b.rn, b.cn), lr);
        }
        apply_expansions(&mut self.flat, &self.nodes, self.root, self.root, &exp, eps);
        let nn = self.nodes.len();
        self.far = NestedFar::empty(nn);
    }
}

fn tree_node_count(tree: &ClusterTree) -> usize {
    tree.nodes.len()
}

/// Walk the flat structure in lockstep with the cluster tree, take every
/// non-trivial low-rank leaf out (replaced by rank 0), and record it with
/// its (row node, col node) ids.
fn extract_far<T: Scalar>(
    h: &mut HMatrix<T>,
    nodes: &[H2Node],
    rn: ClusterNodeId,
    cn: ClusterNodeId,
    out: &mut Vec<(usize, usize, LowRank<T>)>,
) {
    match &mut h.kind {
        HKind::LowRank(lr) => {
            if lr.rank() > 0 {
                let (m, n) = (lr.nrows(), lr.ncols());
                let taken = std::mem::replace(lr, LowRank::zeros(m, n));
                out.push((rn, cn, taken));
            }
        }
        HKind::Hier(ch) => {
            let (rl, rr) = nodes[rn].children.expect("Hier block on a leaf cluster");
            let (cl, cr) = nodes[cn].children.expect("Hier block on a leaf cluster");
            extract_far(&mut ch[0], nodes, rl, cl, out);
            extract_far(&mut ch[1], nodes, rr, cl, out);
            extract_far(&mut ch[2], nodes, rl, cr, out);
            extract_far(&mut ch[3], nodes, rr, cr, out);
        }
        HKind::Dense(_) | HKind::DenseLu(_) => {}
    }
}

/// Same walk, folding an expanded low-rank term into each admissible leaf.
fn apply_expansions<T: Scalar>(
    h: &mut HMatrix<T>,
    nodes: &[H2Node],
    rn: ClusterNodeId,
    cn: ClusterNodeId,
    exp: &HashMap<(usize, usize), LowRank<T>>,
    eps: T::Real,
) {
    match &mut h.kind {
        HKind::LowRank(_) => {
            if let Some(lr) = exp.get(&(rn, cn)) {
                h.axpy_lowrank(T::ONE, lr, eps);
            }
        }
        HKind::Hier(_) => {
            let (rl, rr) = nodes[rn].children.expect("Hier block on a leaf cluster");
            let (cl, cr) = nodes[cn].children.expect("Hier block on a leaf cluster");
            let HKind::Hier(ch) = &mut h.kind else {
                unreachable!()
            };
            apply_expansions(&mut ch[0], nodes, rl, cl, exp, eps);
            apply_expansions(&mut ch[1], nodes, rr, cl, exp, eps);
            apply_expansions(&mut ch[2], nodes, rl, cr, exp, eps);
            apply_expansions(&mut ch[3], nodes, rr, cr, exp, eps);
        }
        HKind::Dense(_) | HKind::DenseLu(_) => {}
    }
}

/// Row-space panel of `a·bᵀ` with the width of the rank, not of `b`:
/// `a·R_bᵀ` where `b = Q_b·R_b` — right-multiplying by `Q_bᵀ` (orthonormal
/// rows) preserves all row-space geometry the ID measures.
fn weighted<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let r = a.ncols();
    if r == 0 {
        return Mat::zeros(a.nrows(), 0);
    }
    let q = qr_in_place(b.clone());
    let rb = q.r();
    gemm_into(a.as_ref(), Op::NoTrans, rb.as_ref(), Op::Trans)
}

/// Horizontal concatenation.
fn hcat<T: Scalar>(nrows: usize, parts: &[&Mat<T>]) -> Mat<T> {
    let total: usize = parts.iter().map(|p| p.ncols()).sum();
    let mut out = Mat::zeros(nrows, total);
    let mut c = 0;
    for p in parts {
        debug_assert_eq!(p.nrows(), nrows);
        for j in 0..p.ncols() {
            out.col_mut(c).copy_from_slice(p.col(j));
            c += 1;
        }
    }
    out
}

/// Copy rows `rows[i] - offset` of `a`.
fn gather_rows<T: Scalar>(a: &Mat<T>, rows: &[usize], offset: usize) -> Mat<T> {
    Mat::from_fn(rows.len(), a.ncols(), |i, j| a[(rows[i] - offset, j)])
}

/// Row interpolative decomposition at absolute tolerance `tol`: returns
/// local skeleton rows `σ` and interpolation `P` (`m × k`, `P[σ, :] = I`)
/// with `s ≈ P·s[σ, :]`. Built on the column-pivoted QR of `sᵀ`; the
/// interpolation coefficients are `R₁₁⁻¹·R₁₂` by back-substitution.
fn row_id<T: Scalar>(s: &Mat<T>, tol: T::Real, max_rank: usize) -> (Vec<usize>, Mat<T>) {
    let m = s.nrows();
    let st = s.transpose();
    let f = col_piv_qr(st, tol, max_rank);
    let k = f.rank;
    let mut p = Mat::<T>::zeros(m, k);
    if k == 0 {
        return (Vec::new(), p);
    }
    let r = f.qr.r();
    for j in 0..k {
        p[(f.perm[j], j)] = T::ONE;
    }
    for c in k..m {
        // Solve R₁₁·x = R[:, c] (upper triangular).
        let mut x: Vec<T> = (0..k).map(|i| r[(i, c)]).collect();
        for i in (0..k).rev() {
            let mut v = x[i];
            for l in i + 1..k {
                v -= r[(i, l)] * x[l];
            }
            x[i] = v * r[(i, i)].recip();
        }
        for i in 0..k {
            p[(f.perm[c], i)] = x[i];
        }
    }
    (f.perm[..k].to_vec(), p)
}

/// Bound the stacked panel's width before the ID: column-compress through a
/// truncated factorization (row space preserved up to `eps`).
fn cap_stack<T: Scalar>(stack: Mat<T>, eps: T::Real, max_rank: usize) -> Mat<T> {
    let cap = (2 * max_rank).max(64);
    if stack.ncols() <= cap {
        return stack;
    }
    let norm = stack.norm_fro();
    if norm == T::Real::RZERO {
        return Mat::zeros(stack.nrows(), 0);
    }
    let lr = LowRank::from_dense(&stack, eps * norm, max_rank.min(stack.nrows()));
    weighted(&lr.u, &lr.v)
}

/// Top-down nested-basis construction with ancestor inheritance. `inherited`
/// carries (restrictions of) every ancestor's far-field row data; a node's
/// ID therefore selects a skeleton that serves its own blocks *and* all
/// blocks higher up — the nestedness invariant.
fn build_basis<T: Scalar>(
    nodes: &[H2Node],
    n: usize,
    inherited: Mat<T>,
    own_w: &[Vec<Mat<T>>],
    eps: T::Real,
    max_rank: usize,
    basis: &mut Basis<T>,
) {
    let info = nodes[n];
    let len = info.len();
    let mut parts: Vec<&Mat<T>> = own_w[n].iter().collect();
    parts.push(&inherited);
    let stack = cap_stack(hcat(len, &parts), eps, max_rank);
    match info.children {
        None => {
            let tol = eps * stack.norm_fro();
            let (skel_loc, p) = row_id(&stack, tol, max_rank.min(len));
            basis.skel[n] = skel_loc.iter().map(|&i| info.begin + i).collect();
            basis.op[n] = BasisOp::Leaf(p);
        }
        Some((l, r)) => {
            let ll = nodes[l].len();
            let w = stack.ncols();
            let inh_l = stack.submatrix(0..ll, 0..w);
            let inh_r = stack.submatrix(ll..len, 0..w);
            build_basis(nodes, l, inh_l, own_w, eps, max_rank, basis);
            build_basis(nodes, r, inh_r, own_w, eps, max_rank, basis);
            // Restrict the node's stack to the children skeletons and ID
            // again: the survivors become this node's skeleton, the
            // interpolation becomes the transfer matrix.
            let joined: Vec<usize> = basis.skel[l]
                .iter()
                .chain(basis.skel[r].iter())
                .copied()
                .collect();
            let restricted = gather_rows(&stack, &joined, info.begin);
            let tol = eps * restricted.norm_fro();
            let (sel, e) = row_id(&restricted, tol, max_rank);
            basis.skel[n] = sel.iter().map(|&i| joined[i]).collect();
            basis.op[n] = BasisOp::Transfer(e);
        }
    }
}

/// Expand a node's nested basis to an explicit `len × k` matrix
/// (memoized per pass).
fn expand_basis<T: Scalar>(
    basis: &Basis<T>,
    nodes: &[H2Node],
    n: usize,
    memo: &mut HashMap<usize, Mat<T>>,
) -> Mat<T> {
    if let Some(m) = memo.get(&n) {
        return m.clone();
    }
    let info = nodes[n];
    let len = info.len();
    let out = match &basis.op[n] {
        BasisOp::None => Mat::zeros(len, 0),
        BasisOp::Leaf(p) => p.clone(),
        BasisOp::Transfer(e) => {
            let (l, r) = info.children.expect("transfer on a leaf");
            let pl = expand_basis(basis, nodes, l, memo);
            let pr = expand_basis(basis, nodes, r, memo);
            let (kl, k) = (pl.ncols(), e.ncols());
            let mut out = Mat::zeros(len, k);
            if k > 0 {
                let ll = pl.nrows();
                if kl > 0 {
                    let etop = e.submatrix(0..kl, 0..k);
                    gemm(
                        T::ONE,
                        pl.as_ref(),
                        Op::NoTrans,
                        etop.as_ref(),
                        Op::NoTrans,
                        T::ZERO,
                        out.view_mut(0..ll, 0..k),
                    );
                }
                if e.nrows() > kl {
                    let ebot = e.submatrix(kl..e.nrows(), 0..k);
                    gemm(
                        T::ONE,
                        pr.as_ref(),
                        Op::NoTrans,
                        ebot.as_ref(),
                        Op::NoTrans,
                        T::ZERO,
                        out.view_mut(ll..len, 0..k),
                    );
                }
            }
            out
        }
    };
    memo.insert(n, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;

    fn circle_points(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point3::new(t.cos(), t.sin(), 0.0)
            })
            .collect()
    }

    fn kernel(points: &[Point3]) -> impl Fn(usize, usize) -> f64 + Sync + '_ {
        move |i: usize, j: usize| {
            if i == j {
                4.0
            } else {
                let d = points[i].dist(&points[j]);
                1.0 / (1.0 + d)
            }
        }
    }

    fn opts(eps: f64) -> H2Options {
        H2Options {
            eps,
            eta: 2.0,
            max_rank: 64,
        }
    }

    #[test]
    fn assemble_matches_dense_oracle() {
        let n = 256;
        let points = circle_points(n);
        let tree = ClusterTree::build(&points, 16);
        let oracle = kernel(&points);
        let perm = tree.perm.clone();
        let clustered = move |i: usize, j: usize| oracle(perm[i], perm[j]);
        let eps = 1e-6;
        let h2 = H2Matrix::assemble(&tree, &clustered, &opts(eps));
        let want = Mat::from_fn(n, n, &clustered);
        let mut d = h2.to_dense();
        d.axpy(-1.0, &want);
        assert!(
            d.norm_fro() <= 50.0 * eps * want.norm_fro(),
            "rel err {:.3e}",
            d.norm_fro() / want.norm_fro()
        );
        assert!(h2.stats().far_blocks > 0, "no far field sparsified");
    }

    #[test]
    fn into_flat_preserves_the_matrix() {
        let n = 192;
        let points = circle_points(n);
        let tree = ClusterTree::build(&points, 16);
        let oracle = kernel(&points);
        let perm = tree.perm.clone();
        let clustered = move |i: usize, j: usize| oracle(perm[i], perm[j]);
        let eps = 1e-8;
        let h2 = H2Matrix::assemble(&tree, &clustered, &opts(eps));
        let before = h2.to_dense();
        let flat = h2.into_flat(eps);
        let mut d = flat.to_dense();
        d.axpy(-1.0, &before);
        assert!(
            d.norm_fro() <= 10.0 * eps * before.norm_fro(),
            "rel err {:.3e}",
            d.norm_fro() / before.norm_fro()
        );
    }

    #[test]
    fn deferred_axpy_and_recompress_roundtrip() {
        let n = 160;
        let points = circle_points(n);
        let tree = ClusterTree::build(&points, 16);
        let oracle = kernel(&points);
        let perm = tree.perm.clone();
        let clustered = move |i: usize, j: usize| oracle(perm[i], perm[j]);
        let eps = 1e-7;
        let mut h2 = H2Matrix::assemble(&tree, &clustered, &opts(eps));
        let mut want = h2.to_dense();
        // Fold a few panels in, mirrored on the dense oracle.
        let mut rng_state = 1234567u64;
        for k in 0..6 {
            let (r0, c0, pm, pn) = (k * 17 % 96, k * 29 % 96, 48, 40);
            let panel = Mat::from_fn(pm, pn, |i, j| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((rng_state >> 33) as f64 / 2.0_f64.powi(31) - 1.0) * 0.01 * ((i + j) as f64 + 1.0)
            });
            h2.try_axpy_dense_block_deferred(1.0, r0, c0, panel.as_ref(), eps, 8)
                .unwrap();
            let mut dst = want.view_mut(r0..r0 + pm, c0..c0 + pn);
            dst.axpy(1.0, panel.as_ref());
        }
        h2.recompress(eps);
        let mut d = h2.to_dense();
        d.axpy(-1.0, &want);
        assert!(
            d.norm_fro() <= 100.0 * eps * want.norm_fro(),
            "rel err {:.3e}",
            d.norm_fro() / want.norm_fro()
        );
    }

    #[test]
    fn nested_storage_beats_flat_at_scale() {
        // At a loose tolerance and enough points the nested far field must
        // undercut the flat low-rank leaves it replaces.
        let n = 1024;
        let points = circle_points(n);
        let tree = ClusterTree::build(&points, 32);
        let oracle = kernel(&points);
        let perm = tree.perm.clone();
        let clustered = move |i: usize, j: usize| oracle(perm[i], perm[j]);
        let o = H2Options {
            eps: 1e-4,
            eta: 6.0,
            max_rank: 64,
        };
        let hopts = HOptions {
            eps: o.eps,
            eta: o.eta,
            max_rank: o.max_rank,
            method: AssembleMethod::Aca,
        };
        let flat = HMatrix::assemble_root(&tree, &tree, &clustered, &hopts);
        let flat_bytes = flat.byte_size();
        let h2 = H2Matrix::from_flat(&tree, flat, &o);
        let s = h2.stats();
        assert!(s.far_blocks > 0);
        assert!(
            s.bytes <= flat_bytes,
            "nested {} > flat {}",
            s.bytes,
            flat_bytes
        );
    }

    #[test]
    fn row_id_reconstructs_within_tolerance() {
        let mut state = 42u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / 2.0_f64.powi(31) - 1.0
        };
        // Rank-4 matrix plus small noise.
        let (m, k) = (30, 12);
        let a = Mat::from_fn(m, 4, |_, _| rnd());
        let b = Mat::from_fn(k, 4, |_, _| rnd());
        let mut s = gemm_into(a.as_ref(), Op::NoTrans, b.as_ref(), Op::Trans);
        let noise = Mat::from_fn(m, k, |_, _| rnd() * 1e-9);
        s.axpy(1.0, &noise);
        let tol = 1e-6 * s.norm_fro();
        let (skel, p) = row_id(&s, tol, m);
        assert!(skel.len() <= 6, "skeleton {} too large", skel.len());
        let srows = gather_rows(&s, &skel, 0);
        let rec = gemm_into(p.as_ref(), Op::NoTrans, srows.as_ref(), Op::NoTrans);
        let mut d = rec;
        d.axpy(-1.0, &s);
        assert!(
            d.norm_fro() <= 20.0 * tol,
            "ID err {:.3e} vs tol {tol:.3e}",
            d.norm_fro()
        );
    }

    #[test]
    fn empty_far_field_is_handled() {
        // Few points at a tight leaf size: nothing admissible, everything
        // dense — the nested layer must stay empty and inert.
        let points = circle_points(16);
        let tree = ClusterTree::build(&points, 16);
        let oracle = kernel(&points);
        let perm = tree.perm.clone();
        let clustered = move |i: usize, j: usize| oracle(perm[i], perm[j]);
        let mut h2 = H2Matrix::assemble(&tree, &clustered, &opts(1e-6));
        assert_eq!(h2.stats().far_blocks, 0);
        h2.recompress(1e-6);
        let want = Mat::from_fn(16, 16, &clustered);
        let mut d = h2.to_dense();
        d.axpy(-1.0, &want);
        assert!(d.norm_fro() <= 1e-12);
    }
}
