//! H-LU factorization and triangular solves.
//!
//! The recursion is the classical block LU on the 2×2 hierarchy:
//! factor `A₁₁`, solve `A₁₂ ← L₁₁⁻¹·A₁₂` and `A₂₁ ← A₂₁·U₁₁⁻¹`, update
//! `A₂₂ ← A₂₂ − A₂₁·A₁₂` with ε-recompression, recurse on `A₂₂`. Dense
//! diagonal leaves are factored with partially pivoted LU; the leaf
//! permutations stay *local* to the leaf row range (they only ever permute
//! rows of sibling blocks spanning exactly that range), so the hierarchical
//! structure is untouched.
//!
//! LU is used for symmetric matrices too: this costs a factor ≤ 2 in flops
//! and memory against a symmetric H-LDLᵀ but keeps the hierarchical solver
//! applicable to the paper's complex non-symmetric industrial systems with a
//! single code path (substitution documented in DESIGN.md).

use csolve_common::{ByteSized, Error, Result, Scalar, ScopeTracer, SpanKind};
use csolve_dense::{
    apply_row_swaps_fwd, lu_in_place, trsm_left, trsm_right, Diag, Mat, MatMut, Op, Tri,
};

use crate::hmatrix::{h_gemm, HKind, HMatrix};

/// A factored H-matrix (`H ≈ L·U` with leaf-local pivoting).
pub struct HLu<T: Scalar> {
    h: HMatrix<T>,
}

impl<T: Scalar> ByteSized for HLu<T> {
    fn byte_size(&self) -> usize {
        self.h.byte_size()
    }
}

impl<T: Scalar> HLu<T> {
    /// Factor `h` in place at relative recompression tolerance `eps`.
    pub fn factor(mut h: HMatrix<T>, eps: T::Real) -> Result<Self> {
        #[cfg(feature = "fault-inject")]
        if crate::fault::take_factor_failure() {
            return Err(Error::CompressionFailure {
                wanted_tol: 0.0,
                achieved: f64::NAN,
            });
        }
        h_lu_rec(&mut h, eps)?;
        Ok(Self { h })
    }

    /// [`HLu::factor`] with the factorization recorded as an `hlu_factor`
    /// span into `tr` (bytes = the factored matrix's storage).
    pub fn factor_traced(h: HMatrix<T>, eps: T::Real, tr: ScopeTracer<'_>) -> Result<Self> {
        let mut span = tr.span(SpanKind::HluFactor);
        let f = Self::factor(h, eps)?;
        span.add_bytes(f.byte_size());
        span.finish();
        Ok(f)
    }

    /// Solve `H·X = B` in place for a dense RHS panel (cluster order).
    pub fn solve_in_place(&self, mut b: MatMut<'_, T>) {
        assert_eq!(b.nrows(), self.h.nrows());
        solve_lower_dense(&self.h, b.rb_mut());
        solve_upper_dense(&self.h, b);
    }

    /// Structure statistics of the factored matrix.
    pub fn stats(&self) -> crate::hmatrix::HStats {
        self.h.stats()
    }
}

fn h_lu_rec<T: Scalar>(h: &mut HMatrix<T>, eps: T::Real) -> Result<()> {
    match &mut h.kind {
        HKind::Dense(_) => {
            let HKind::Dense(m) = std::mem::replace(&mut h.kind, HKind::Dense(Mat::zeros(0, 0)))
            else {
                unreachable!()
            };
            let f = lu_in_place(m)?;
            h.kind = HKind::DenseLu(f);
            Ok(())
        }
        HKind::LowRank(_) => Err(Error::InvalidConfig(
            "cannot LU-factor a low-rank diagonal block (singular by construction)".into(),
        )),
        HKind::DenseLu(_) => Err(Error::InvalidConfig("block already factored".into())),
        HKind::Hier(ch) => {
            let [a11, a21, a12, a22] = &mut **ch;
            h_lu_rec(a11, eps)?;
            solve_lower_h(a11, a12, eps);
            solve_upper_right_h(a11, a21, eps);
            h_gemm(-T::ONE, a21, a12, a22, eps);
            h_lu_rec(a22, eps)
        }
    }
}

/// `B ← L⁻¹·P·B` where `l` is a factored diagonal block.
fn solve_lower_h<T: Scalar>(l: &HMatrix<T>, b: &mut HMatrix<T>, eps: T::Real) {
    match (&l.kind, &mut b.kind) {
        (HKind::DenseLu(f), HKind::Dense(bm)) => {
            apply_row_swaps_fwd(&f.ipiv, bm.as_mut());
            trsm_left(
                Tri::Lower,
                Op::NoTrans,
                Diag::Unit,
                T::ONE,
                f.lu.as_ref(),
                bm.as_mut(),
            );
        }
        (HKind::DenseLu(f), HKind::LowRank(lr)) => {
            apply_row_swaps_fwd(&f.ipiv, lr.u.as_mut());
            trsm_left(
                Tri::Lower,
                Op::NoTrans,
                Diag::Unit,
                T::ONE,
                f.lu.as_ref(),
                lr.u.as_mut(),
            );
        }
        (HKind::Hier(_), HKind::Dense(bm)) => {
            solve_lower_dense(l, bm.as_mut());
        }
        (HKind::Hier(_), HKind::LowRank(lr)) => {
            solve_lower_dense(l, lr.u.as_mut());
        }
        (HKind::Hier(lc), HKind::Hier(bc)) => {
            let [l11, l21, _l12, l22] = &**lc;
            let [b11, b21, b12, b22] = &mut **bc;
            solve_lower_h(l11, b11, eps);
            solve_lower_h(l11, b12, eps);
            h_gemm(-T::ONE, l21, b11, b21, eps);
            solve_lower_h(l22, b21, eps);
            h_gemm(-T::ONE, l21, b12, b22, eps);
            solve_lower_h(l22, b22, eps);
        }
        _ => panic!("solve_lower_h: invalid operand kinds"),
    }
}

/// `B ← B·U⁻¹` where `u` is a factored diagonal block.
fn solve_upper_right_h<T: Scalar>(u: &HMatrix<T>, b: &mut HMatrix<T>, eps: T::Real) {
    match (&u.kind, &mut b.kind) {
        (HKind::DenseLu(f), HKind::Dense(bm)) => {
            trsm_right(
                Tri::Upper,
                Op::NoTrans,
                Diag::NonUnit,
                T::ONE,
                f.lu.as_ref(),
                bm.as_mut(),
            );
        }
        (HKind::DenseLu(f), HKind::LowRank(lr)) => {
            // (Bu·Bvᵀ)·U⁻¹ = Bu·(U⁻ᵀ·Bv)ᵀ : solve Uᵀ·Y = Bv.
            trsm_left(
                Tri::Upper,
                Op::Trans,
                Diag::NonUnit,
                T::ONE,
                f.lu.as_ref(),
                lr.v.as_mut(),
            );
        }
        (HKind::Hier(_), HKind::Dense(bm)) => {
            solve_upper_right_dense(u, bm.as_mut());
        }
        (HKind::Hier(_), HKind::LowRank(lr)) => {
            solve_upper_t_dense(u, lr.v.as_mut());
        }
        (HKind::Hier(uc), HKind::Hier(bc)) => {
            let [u11, _u21, u12, u22] = &**uc;
            let [b11, b21, b12, b22] = &mut **bc;
            solve_upper_right_h(u11, b11, eps);
            solve_upper_right_h(u11, b21, eps);
            h_gemm(-T::ONE, b11, u12, b12, eps);
            solve_upper_right_h(u22, b12, eps);
            h_gemm(-T::ONE, b21, u12, b22, eps);
            solve_upper_right_h(u22, b22, eps);
        }
        _ => panic!("solve_upper_right_h: invalid operand kinds"),
    }
}

/// Forward solve `panel ← L⁻¹·P·panel` on a dense panel.
pub(crate) fn solve_lower_dense<T: Scalar>(l: &HMatrix<T>, mut panel: MatMut<'_, T>) {
    match &l.kind {
        HKind::DenseLu(f) => {
            apply_row_swaps_fwd(&f.ipiv, panel.rb_mut());
            trsm_left(
                Tri::Lower,
                Op::NoTrans,
                Diag::Unit,
                T::ONE,
                f.lu.as_ref(),
                panel,
            );
        }
        HKind::Hier(ch) => {
            let [l11, l21, _l12, l22] = &**ch;
            let rs = l11.nrows();
            let (mut top, mut bot) = panel.split_at_row(rs);
            solve_lower_dense(l11, top.rb_mut());
            l21.mul_dense(-T::ONE, top.rb(), T::ONE, bot.rb_mut());
            solve_lower_dense(l22, bot);
        }
        _ => panic!("solve_lower_dense: block not factored"),
    }
}

/// Backward solve `panel ← U⁻¹·panel` on a dense panel.
pub(crate) fn solve_upper_dense<T: Scalar>(u: &HMatrix<T>, panel: MatMut<'_, T>) {
    match &u.kind {
        HKind::DenseLu(f) => {
            trsm_left(
                Tri::Upper,
                Op::NoTrans,
                Diag::NonUnit,
                T::ONE,
                f.lu.as_ref(),
                panel,
            );
        }
        HKind::Hier(ch) => {
            let [u11, _u21, u12, u22] = &**ch;
            let rs = u11.nrows();
            let (mut top, mut bot) = panel.split_at_row(rs);
            solve_upper_dense(u22, bot.rb_mut());
            u12.mul_dense(-T::ONE, bot.rb(), T::ONE, top.rb_mut());
            solve_upper_dense(u11, top);
        }
        _ => panic!("solve_upper_dense: block not factored"),
    }
}

/// Forward solve `panel ← U⁻ᵀ·panel` (plain transpose) on a dense panel.
fn solve_upper_t_dense<T: Scalar>(u: &HMatrix<T>, panel: MatMut<'_, T>) {
    match &u.kind {
        HKind::DenseLu(f) => {
            trsm_left(
                Tri::Upper,
                Op::Trans,
                Diag::NonUnit,
                T::ONE,
                f.lu.as_ref(),
                panel,
            );
        }
        HKind::Hier(ch) => {
            let [u11, _u21, u12, u22] = &**ch;
            let rs = u11.nrows();
            let (mut top, mut bot) = panel.split_at_row(rs);
            solve_upper_t_dense(u11, top.rb_mut());
            u12.mul_dense_t(-T::ONE, top.rb(), T::ONE, bot.rb_mut());
            solve_upper_t_dense(u22, bot);
        }
        _ => panic!("solve_upper_t_dense: block not factored"),
    }
}

/// Right solve `panel ← panel·U⁻¹` on a dense panel.
fn solve_upper_right_dense<T: Scalar>(u: &HMatrix<T>, panel: MatMut<'_, T>) {
    match &u.kind {
        HKind::DenseLu(f) => {
            trsm_right(
                Tri::Upper,
                Op::NoTrans,
                Diag::NonUnit,
                T::ONE,
                f.lu.as_ref(),
                panel,
            );
        }
        HKind::Hier(ch) => {
            let [u11, _u21, u12, u22] = &**ch;
            let cs = u11.ncols();
            let (mut left, mut right) = panel.split_at_col(cs);
            solve_upper_right_dense(u11, left.rb_mut());
            u12.dense_mul_h(-T::ONE, left.rb(), T::ONE, right.rb_mut());
            solve_upper_right_dense(u22, right);
        }
        _ => panic!("solve_upper_right_dense: block not factored"),
    }
}
