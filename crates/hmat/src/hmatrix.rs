//! The hierarchical matrix type: structure, assembly, and ε-truncated
//! arithmetic (products with dense panels, compressed AXPY, H×H products).
//!
//! Invariants maintained by assembly and preserved by arithmetic:
//!
//! * a node is `Hier` only when *both* its row and column clusters have
//!   children (2×2 aligned splits);
//! * `Dense` leaves occur only when at least one cluster is a leaf;
//! * `LowRank` leaves occur only on admissible blocks (any level).
//!
//! All indices are in *cluster order*.

use csolve_common::{ByteSized, RealScalar, Scalar, ScopeTracer, SpanKind};
use csolve_dense::{gemm, Mat, MatMut, MatRef, Op};
use csolve_lowrank::{aca_plus, LowRank};

use crate::cluster::{admissible, ClusterNodeId, ClusterTree};

/// How admissible blocks are compressed at assembly time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssembleMethod {
    /// Adaptive Cross Approximation: samples `O(r(m+n))` entries. Use when
    /// entry evaluation is cheap relative to forming the dense block (BEM
    /// kernel assembly).
    Aca,
    /// Extract the dense block and compress with rank-revealing QR. Use when
    /// the entries are already materialized (compressing a dense Schur
    /// block).
    Direct,
}

/// Assembly / arithmetic options.
#[derive(Debug, Clone, Copy)]
pub struct HOptions {
    /// Relative compression tolerance ε (the paper's precision parameter).
    pub eps: f64,
    /// Admissibility parameter η.
    pub eta: f64,
    /// Rank cap for ACA before falling back to splitting/dense.
    pub max_rank: usize,
    /// How admissible blocks are compressed during assembly.
    pub method: AssembleMethod,
}

impl Default for HOptions {
    fn default() -> Self {
        Self {
            eps: 1e-3,
            eta: 2.0,
            max_rank: 256,
            method: AssembleMethod::Aca,
        }
    }
}

pub(crate) enum HKind<T: Scalar> {
    Dense(Mat<T>),
    LowRank(LowRank<T>),
    /// Children in order `[a11, a21, a12, a22]` (column-major of the 2×2).
    Hier(Box<[HMatrix<T>; 4]>),
    /// Factored dense diagonal leaf (`P·A = L·U` packed) — produced by H-LU.
    DenseLu(csolve_dense::LuFactors<T>),
}

/// A hierarchical matrix over cluster-ordered index ranges.
pub struct HMatrix<T: Scalar> {
    pub(crate) nrows: usize,
    pub(crate) ncols: usize,
    pub(crate) kind: HKind<T>,
}

/// Structure statistics (for the memory studies of the paper).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct HStats {
    /// Number of dense leaf blocks.
    pub dense_leaves: usize,
    /// Number of low-rank leaf blocks.
    pub lowrank_leaves: usize,
    /// Largest rank among the low-rank leaves.
    pub max_rank: usize,
    /// Bytes held by the whole structure.
    pub bytes: usize,
    /// Bytes a dense representation of the same matrix would need.
    pub dense_bytes: usize,
}

impl<T: Scalar> ByteSized for HMatrix<T> {
    fn byte_size(&self) -> usize {
        match &self.kind {
            HKind::Dense(m) => m.byte_size(),
            HKind::LowRank(lr) => lr.byte_size(),
            HKind::Hier(ch) => ch.iter().map(|c| c.byte_size()).sum(),
            HKind::DenseLu(f) => f.byte_size(),
        }
    }
}

impl<T: Scalar> HMatrix<T> {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Zero matrix with a flat dense representation (small helper).
    pub fn zeros_dense(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            kind: HKind::Dense(Mat::zeros(nrows, ncols)),
        }
    }

    /// Assemble the block for cluster nodes `(rn, cn)` from an entry oracle
    /// in cluster order: `oracle(i, j)` with `i` in `rows.node(rn)` global
    /// positions, `j` likewise.
    pub fn assemble(
        rows: &ClusterTree,
        cols: &ClusterTree,
        rn: ClusterNodeId,
        cn: ClusterNodeId,
        oracle: &(impl Fn(usize, usize) -> T + Sync),
        opts: &HOptions,
    ) -> Self {
        let r = rows.node(rn);
        let c = cols.node(cn);
        let (m, n) = (r.len(), c.len());
        let (r0, c0) = (r.begin, c.begin);

        if m == 0 || n == 0 {
            return Self::zeros_dense(m, n);
        }

        if admissible(r, c, opts.eta) {
            let eps = T::Real::from_f64_real(opts.eps);
            match opts.method {
                AssembleMethod::Aca => {
                    let local = |i: usize, j: usize| oracle(r0 + i, c0 + j);
                    if let Ok(lr) = aca_plus(&local, m, n, eps, opts.max_rank) {
                        return Self {
                            nrows: m,
                            ncols: n,
                            kind: HKind::LowRank(lr),
                        };
                    }
                    // fall through: split if possible, dense otherwise
                }
                AssembleMethod::Direct => {
                    let d = Mat::from_fn(m, n, |i, j| oracle(r0 + i, c0 + j));
                    let tol = eps * d.norm_fro();
                    let lr = LowRank::from_dense(&d, tol, opts.max_rank.min(m.min(n)));
                    if lr.rank() * (m + n) < m * n {
                        return Self {
                            nrows: m,
                            ncols: n,
                            kind: HKind::LowRank(lr),
                        };
                    }
                    return Self {
                        nrows: m,
                        ncols: n,
                        kind: HKind::Dense(d),
                    };
                }
            }
        }

        match (r.children, c.children) {
            (Some((rl, rr)), Some((cl, cr))) => {
                let build = |rn, cn| Self::assemble(rows, cols, rn, cn, oracle, opts);
                let ((a11, a21), (a12, a22)) = rayon::join(
                    || rayon::join(|| build(rl, cl), || build(rr, cl)),
                    || rayon::join(|| build(rl, cr), || build(rr, cr)),
                );
                Self {
                    nrows: m,
                    ncols: n,
                    kind: HKind::Hier(Box::new([a11, a21, a12, a22])),
                }
            }
            _ => {
                let d = Mat::from_fn(m, n, |i, j| oracle(r0 + i, c0 + j));
                Self {
                    nrows: m,
                    ncols: n,
                    kind: HKind::Dense(d),
                }
            }
        }
    }

    /// Assemble the full matrix over two cluster trees.
    pub fn assemble_root(
        rows: &ClusterTree,
        cols: &ClusterTree,
        oracle: &(impl Fn(usize, usize) -> T + Sync),
        opts: &HOptions,
    ) -> Self {
        Self::assemble(rows, cols, rows.root(), cols.root(), oracle, opts)
    }

    /// Compress an already materialized dense matrix (cluster order) into an
    /// H-matrix over the given trees.
    pub fn compress_dense(
        rows: &ClusterTree,
        cols: &ClusterTree,
        dense: &Mat<T>,
        opts: &HOptions,
    ) -> Self {
        assert_eq!(dense.nrows(), rows.len());
        assert_eq!(dense.ncols(), cols.len());
        let o = HOptions {
            method: AssembleMethod::Direct,
            ..*opts
        };
        Self::assemble_root(rows, cols, &|i, j| dense[(i, j)], &o)
    }

    /// The (row_split, col_split) of a `Hier` node.
    pub(crate) fn splits(&self) -> (usize, usize) {
        match &self.kind {
            HKind::Hier(ch) => (ch[0].nrows, ch[0].ncols),
            _ => unreachable!("splits() on a leaf"),
        }
    }

    /// Materialize as a dense matrix (tests / small problems only).
    pub fn to_dense(&self) -> Mat<T> {
        let mut out = Mat::zeros(self.nrows, self.ncols);
        self.write_dense(out.as_mut());
        out
    }

    fn write_dense(&self, mut out: MatMut<'_, T>) {
        match &self.kind {
            HKind::Dense(m) => out.copy_from(m.as_ref()),
            HKind::DenseLu(_) => panic!("write_dense on a factored leaf"),
            HKind::LowRank(lr) => {
                out.fill(T::ZERO);
                lr.axpy_into_dense(T::ONE, out);
            }
            HKind::Hier(ch) => {
                let (rs, cs) = self.splits();
                let (a11, a12, a21, a22) = out.split_2x2(rs, cs);
                ch[0].write_dense(a11);
                ch[1].write_dense(a21);
                ch[2].write_dense(a12);
                ch[3].write_dense(a22);
            }
        }
    }

    /// `C ← α·H·B + β·C` with dense panels in cluster order.
    pub fn mul_dense(&self, alpha: T, b: MatRef<'_, T>, beta: T, mut c: MatMut<'_, T>) {
        assert_eq!(b.nrows(), self.ncols);
        assert_eq!(c.nrows(), self.nrows);
        assert_eq!(b.ncols(), c.ncols());
        scale_panel(beta, c.rb_mut());
        self.mul_dense_acc(alpha, b, c);
    }

    fn mul_dense_acc(&self, alpha: T, b: MatRef<'_, T>, c: MatMut<'_, T>) {
        match &self.kind {
            HKind::Dense(m) => gemm(alpha, m.as_ref(), Op::NoTrans, b, Op::NoTrans, T::ONE, c),
            HKind::DenseLu(_) => panic!("mul_dense on a factored leaf"),
            HKind::LowRank(lr) => lr.mul_dense(alpha, b, Op::NoTrans, T::ONE, c),
            HKind::Hier(ch) => {
                let (rs, cs) = self.splits();
                let b1 = b.submatrix(0..cs, 0..b.ncols());
                let b2 = b.submatrix(cs..self.ncols, 0..b.ncols());
                let (mut c1, mut c2) = c.split_at_row(rs);
                ch[0].mul_dense_acc(alpha, b1, c1.rb_mut());
                ch[2].mul_dense_acc(alpha, b2, c1.rb_mut());
                ch[1].mul_dense_acc(alpha, b1, c2.rb_mut());
                ch[3].mul_dense_acc(alpha, b2, c2.rb_mut());
            }
        }
    }

    /// `C ← α·Hᵀ·B + β·C` (plain transpose).
    pub fn mul_dense_t(&self, alpha: T, b: MatRef<'_, T>, beta: T, mut c: MatMut<'_, T>) {
        assert_eq!(b.nrows(), self.nrows);
        assert_eq!(c.nrows(), self.ncols);
        scale_panel(beta, c.rb_mut());
        self.mul_dense_t_acc(alpha, b, c);
    }

    fn mul_dense_t_acc(&self, alpha: T, b: MatRef<'_, T>, c: MatMut<'_, T>) {
        match &self.kind {
            HKind::Dense(m) => gemm(alpha, m.as_ref(), Op::Trans, b, Op::NoTrans, T::ONE, c),
            HKind::DenseLu(_) => panic!("mul_dense_t on a factored leaf"),
            HKind::LowRank(lr) => {
                // (U·Vᵀ)ᵀ = V·Uᵀ
                let t = LowRank::new(lr.v.clone(), lr.u.clone());
                t.mul_dense(alpha, b, Op::NoTrans, T::ONE, c);
            }
            HKind::Hier(ch) => {
                let (rs, cs) = self.splits();
                let b1 = b.submatrix(0..rs, 0..b.ncols());
                let b2 = b.submatrix(rs..self.nrows, 0..b.ncols());
                let (mut c1, mut c2) = c.split_at_row(cs);
                ch[0].mul_dense_t_acc(alpha, b1, c1.rb_mut());
                ch[1].mul_dense_t_acc(alpha, b2, c1.rb_mut());
                ch[2].mul_dense_t_acc(alpha, b1, c2.rb_mut());
                ch[3].mul_dense_t_acc(alpha, b2, c2.rb_mut());
            }
        }
    }

    /// `y ← α·H·x + β·y`.
    pub fn matvec(&self, alpha: T, x: &[T], beta: T, y: &mut [T]) {
        let b = Mat::from_col_major(x.len(), 1, x.to_vec());
        let mut c = Mat::from_col_major(y.len(), 1, y.to_vec());
        self.mul_dense(alpha, b.as_ref(), beta, c.as_mut());
        y.copy_from_slice(c.col(0));
    }

    /// `out = α·D·H + β·out` with a dense panel on the *left*.
    pub fn dense_mul_h(&self, alpha: T, d: MatRef<'_, T>, beta: T, mut out: MatMut<'_, T>) {
        assert_eq!(d.ncols(), self.nrows);
        assert_eq!(out.nrows(), d.nrows());
        assert_eq!(out.ncols(), self.ncols);
        scale_panel(beta, out.rb_mut());
        self.dense_mul_h_acc(alpha, d, out);
    }

    fn dense_mul_h_acc(&self, alpha: T, d: MatRef<'_, T>, out: MatMut<'_, T>) {
        match &self.kind {
            HKind::Dense(m) => gemm(alpha, d, Op::NoTrans, m.as_ref(), Op::NoTrans, T::ONE, out),
            HKind::DenseLu(_) => panic!("dense_mul_h on a factored leaf"),
            HKind::LowRank(lr) => {
                if lr.rank() == 0 {
                    return;
                }
                // D·U·Vᵀ
                let du = csolve_dense::gemm_into(d, Op::NoTrans, lr.u.as_ref(), Op::NoTrans);
                gemm(
                    alpha,
                    du.as_ref(),
                    Op::NoTrans,
                    lr.v.as_ref(),
                    Op::Trans,
                    T::ONE,
                    out,
                );
            }
            HKind::Hier(ch) => {
                let (rs, cs) = self.splits();
                let d1 = d.submatrix(0..d.nrows(), 0..rs);
                let d2 = d.submatrix(0..d.nrows(), rs..self.nrows);
                let (mut o1, mut o2) = out.split_at_col(cs);
                ch[0].dense_mul_h_acc(alpha, d1, o1.rb_mut());
                ch[1].dense_mul_h_acc(alpha, d2, o1.rb_mut());
                ch[2].dense_mul_h_acc(alpha, d1, o2.rb_mut());
                ch[3].dense_mul_h_acc(alpha, d2, o2.rb_mut());
            }
        }
    }

    /// Compressed AXPY of a dense block: `H[r0.., c0..] += α·panel`, with
    /// recompression of touched low-rank leaves at relative tolerance `eps`.
    ///
    /// This is the core primitive of the paper's compressed-Schur variants:
    /// each dense Schur block returned by the sparse solver is folded into
    /// the compressed Schur complement through this operation.
    pub fn axpy_dense_block(
        &mut self,
        alpha: T,
        r0: usize,
        c0: usize,
        panel: MatRef<'_, T>,
        eps: T::Real,
    ) {
        let (pm, pn) = (panel.nrows(), panel.ncols());
        if pm == 0 || pn == 0 {
            return;
        }
        assert!(r0 + pm <= self.nrows && c0 + pn <= self.ncols);
        match &mut self.kind {
            HKind::Dense(m) => {
                let mut dst = m.view_mut(r0..r0 + pm, c0..c0 + pn);
                dst.axpy(alpha, panel);
            }
            HKind::DenseLu(_) => panic!("axpy on a factored leaf"),
            HKind::LowRank(lr) => {
                // Compress the panel, zero-pad its factors to the leaf shape,
                // truncated add.
                let d = panel.to_owned();
                let tol = eps * d.norm_fro();
                let sub = LowRank::from_dense(&d, tol, pm.min(pn));
                let mut u = Mat::zeros(self.nrows, sub.rank());
                let mut v = Mat::zeros(self.ncols, sub.rank());
                for k in 0..sub.rank() {
                    u.col_mut(k)[r0..r0 + pm].copy_from_slice(sub.u.col(k));
                    v.col_mut(k)[c0..c0 + pn].copy_from_slice(sub.v.col(k));
                }
                let padded = LowRank::new(u, v);
                let total = lr.add(alpha, &padded);
                let tol2 = eps * total.norm_fro();
                *lr = {
                    let mut t = total;
                    t.recompress(tol2);
                    t
                };
            }
            HKind::Hier(_) => {
                let (rs, cs) = self.splits();
                let HKind::Hier(ch) = &mut self.kind else {
                    unreachable!()
                };
                // Row intersections.
                let top = r0 < rs;
                let bot = r0 + pm > rs;
                let left = c0 < cs;
                let right = c0 + pn > cs;
                let rmid = rs.saturating_sub(r0).min(pm);
                let cmid = cs.saturating_sub(c0).min(pn);
                let rb = r0.saturating_sub(rs); // row offset inside bottom children
                let cr = c0.saturating_sub(cs); // col offset inside right children
                if top && left {
                    ch[0].axpy_dense_block(alpha, r0, c0, panel.submatrix(0..rmid, 0..cmid), eps);
                }
                if bot && left {
                    ch[1].axpy_dense_block(alpha, rb, c0, panel.submatrix(rmid..pm, 0..cmid), eps);
                }
                if top && right {
                    ch[2].axpy_dense_block(alpha, r0, cr, panel.submatrix(0..rmid, cmid..pn), eps);
                }
                if bot && right {
                    ch[3].axpy_dense_block(alpha, rb, cr, panel.submatrix(rmid..pm, cmid..pn), eps);
                }
            }
        }
    }

    /// [`HMatrix::try_axpy_dense_block`] with the compression work recorded
    /// as a `compress` span into `tr` (bytes = the accumulator's size after
    /// the truncated add, i.e. the compressed Schur footprint the paper's
    /// Algorithm 2 bounds).
    pub fn try_axpy_dense_block_traced(
        &mut self,
        alpha: T,
        r0: usize,
        c0: usize,
        panel: MatRef<'_, T>,
        eps: T::Real,
        tr: ScopeTracer<'_>,
    ) -> csolve_common::Result<()> {
        let mut span = tr.span(SpanKind::Compress);
        self.try_axpy_dense_block(alpha, r0, c0, panel, eps)?;
        span.add_bytes(self.byte_size());
        span.finish();
        Ok(())
    }

    /// Fallible variant of [`HMatrix::axpy_dense_block`] used by the coupled
    /// solver's Schur accumulator: identical arithmetic, but compression of
    /// the panel into low-rank leaves reports a binding rank cap as
    /// [`csolve_common::Error::CompressionFailure`] instead of silently
    /// keeping a truncated (inaccurate) approximation, and an AXPY into an
    /// already-factored leaf is a structured error rather than a panic. See
    /// [`HMatrix::try_axpy_dense_block_traced`] for the traced form.
    pub fn try_axpy_dense_block(
        &mut self,
        alpha: T,
        r0: usize,
        c0: usize,
        panel: MatRef<'_, T>,
        eps: T::Real,
    ) -> csolve_common::Result<()> {
        // Eager recompression is the `flush_rank = 0` case of the deferred
        // path: any nonzero accumulated rank triggers an immediate
        // truncation.
        self.try_axpy_dense_block_deferred(alpha, r0, c0, panel, eps, 0)
    }

    /// Deferred variant of [`HMatrix::try_axpy_dense_block`]: the panel is
    /// still compressed and folded into the touched leaves, but a low-rank
    /// leaf only recompresses itself once its accumulated formal rank
    /// exceeds `flush_rank` (eager recompression is the `flush_rank = 0`
    /// case). Deferring amortizes the `O((m+n)·r²)` recompression cost over
    /// several accumulated updates at the price of a temporarily larger
    /// representation; pair with [`HMatrix::recompress_leaves`] to restore
    /// the truncated form before measuring or factoring the accumulator.
    pub fn try_axpy_dense_block_deferred(
        &mut self,
        alpha: T,
        r0: usize,
        c0: usize,
        panel: MatRef<'_, T>,
        eps: T::Real,
        flush_rank: usize,
    ) -> csolve_common::Result<()> {
        let (pm, pn) = (panel.nrows(), panel.ncols());
        if pm == 0 || pn == 0 {
            return Ok(());
        }
        if r0 + pm > self.nrows || c0 + pn > self.ncols {
            return Err(csolve_common::Error::DimensionMismatch {
                context: "HMatrix::try_axpy_dense_block",
                expected: (self.nrows, self.ncols),
                got: (r0 + pm, c0 + pn),
            });
        }
        match &mut self.kind {
            HKind::Dense(m) => {
                let mut dst = m.view_mut(r0..r0 + pm, c0..c0 + pn);
                dst.axpy(alpha, panel);
                Ok(())
            }
            HKind::DenseLu(_) => Err(csolve_common::Error::Internal {
                context: "compressed AXPY into an already-factored leaf",
            }),
            HKind::LowRank(lr) => {
                let d = panel.to_owned();
                let dnorm = d.norm_fro();
                if dnorm == T::Real::RZERO {
                    // An exactly-zero panel contributes nothing; compressing
                    // it at tol = ε·0 would pivot-scan every column just to
                    // conclude rank 0.
                    return Ok(());
                }
                let tol = eps * dnorm;
                #[allow(unused_mut)]
                let mut max_rank = pm.min(pn);
                #[cfg(feature = "fault-inject")]
                {
                    max_rank = max_rank.min(crate::fault::rank_cap());
                }
                let sub = LowRank::from_dense_checked(&d, tol, max_rank)?;
                let mut u = Mat::zeros(self.nrows, sub.rank());
                let mut v = Mat::zeros(self.ncols, sub.rank());
                for k in 0..sub.rank() {
                    u.col_mut(k)[r0..r0 + pm].copy_from_slice(sub.u.col(k));
                    v.col_mut(k)[c0..c0 + pn].copy_from_slice(sub.v.col(k));
                }
                let padded = LowRank::new(u, v);
                *lr = lr.add(alpha, &padded);
                if lr.rank() > flush_rank {
                    let norm = lr.norm_fro();
                    if norm == T::Real::RZERO {
                        // Formal rank with no Frobenius mass (exact
                        // cancellation of accumulated updates): normalize to
                        // rank 0 instead of recompressing at tolerance 0,
                        // which would keep the cancelled factors alive.
                        *lr = LowRank::zeros(self.nrows, self.ncols);
                    } else {
                        lr.recompress(eps * norm);
                    }
                }
                Ok(())
            }
            HKind::Hier(_) => {
                let (rs, cs) = self.splits();
                let HKind::Hier(ch) = &mut self.kind else {
                    unreachable!()
                };
                let top = r0 < rs;
                let bot = r0 + pm > rs;
                let left = c0 < cs;
                let right = c0 + pn > cs;
                let rmid = rs.saturating_sub(r0).min(pm);
                let cmid = cs.saturating_sub(c0).min(pn);
                let rb = r0.saturating_sub(rs);
                let cr = c0.saturating_sub(cs);
                if top && left {
                    ch[0].try_axpy_dense_block_deferred(
                        alpha,
                        r0,
                        c0,
                        panel.submatrix(0..rmid, 0..cmid),
                        eps,
                        flush_rank,
                    )?;
                }
                if bot && left {
                    ch[1].try_axpy_dense_block_deferred(
                        alpha,
                        rb,
                        c0,
                        panel.submatrix(rmid..pm, 0..cmid),
                        eps,
                        flush_rank,
                    )?;
                }
                if top && right {
                    ch[2].try_axpy_dense_block_deferred(
                        alpha,
                        r0,
                        cr,
                        panel.submatrix(0..rmid, cmid..pn),
                        eps,
                        flush_rank,
                    )?;
                }
                if bot && right {
                    ch[3].try_axpy_dense_block_deferred(
                        alpha,
                        rb,
                        cr,
                        panel.submatrix(rmid..pm, cmid..pn),
                        eps,
                        flush_rank,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Recompress every low-rank leaf at relative tolerance `eps`, restoring
    /// the truncated representation after a sequence of deferred AXPYs
    /// ([`HMatrix::try_axpy_dense_block_deferred`]). Dense and factored
    /// leaves are untouched. Idempotent: a second call at the same tolerance
    /// leaves ranks (and, up to roundoff, entries) unchanged.
    pub fn recompress_leaves(&mut self, eps: T::Real) {
        match &mut self.kind {
            HKind::Dense(_) | HKind::DenseLu(_) => {}
            HKind::LowRank(lr) => {
                if lr.rank() > 0 {
                    let norm = lr.norm_fro();
                    if norm == T::Real::RZERO {
                        // A positive formal rank carrying no mass (cancelled
                        // sums) normalizes straight to rank 0 — recompressing
                        // at tolerance ε·0 = 0 would retain the factors.
                        *lr = LowRank::zeros(lr.nrows(), lr.ncols());
                    } else {
                        lr.recompress(eps * norm);
                    }
                }
            }
            HKind::Hier(ch) => {
                for c in ch.iter_mut() {
                    c.recompress_leaves(eps);
                }
            }
        }
    }

    /// Compressed AXPY of a low-rank term covering the whole block:
    /// `H += α·L` with recompression at relative tolerance `eps`.
    pub fn axpy_lowrank(&mut self, alpha: T, lr_in: &LowRank<T>, eps: T::Real) {
        assert_eq!(lr_in.nrows(), self.nrows);
        assert_eq!(lr_in.ncols(), self.ncols);
        if lr_in.rank() == 0 {
            return;
        }
        match &mut self.kind {
            HKind::Dense(m) => lr_in.axpy_into_dense(alpha, m.as_mut()),
            HKind::DenseLu(_) => panic!("axpy on a factored leaf"),
            HKind::LowRank(mine) => {
                let total = mine.add(alpha, lr_in);
                let norm = total.norm_fro();
                *mine = if norm == T::Real::RZERO {
                    LowRank::zeros(total.nrows(), total.ncols())
                } else {
                    let mut t = total;
                    t.recompress(eps * norm);
                    t
                };
            }
            HKind::Hier(_) => {
                let (rs, cs) = self.splits();
                let (m, n) = (self.nrows, self.ncols);
                let HKind::Hier(ch) = &mut self.kind else {
                    unreachable!()
                };
                let parts = [
                    (0usize, 0..rs, 0..cs),
                    (1, rs..m, 0..cs),
                    (2, 0..rs, cs..n),
                    (3, rs..m, cs..n),
                ];
                for (idx, rr, cc) in parts {
                    let sub = LowRank::new(
                        lr_in.u.submatrix(rr.clone(), 0..lr_in.rank()),
                        lr_in.v.submatrix(cc.clone(), 0..lr_in.rank()),
                    );
                    ch[idx].axpy_lowrank(alpha, &sub, eps);
                }
            }
        }
    }

    /// Collapse to a single low-rank matrix at relative tolerance `eps`.
    pub fn to_lowrank(&self, eps: T::Real) -> LowRank<T> {
        match &self.kind {
            HKind::Dense(m) => {
                let tol = eps * m.norm_fro();
                LowRank::from_dense(m, tol, m.nrows().min(m.ncols()))
            }
            HKind::DenseLu(_) => panic!("to_lowrank on a factored leaf"),
            HKind::LowRank(lr) => lr.clone(),
            HKind::Hier(ch) => {
                let (rs, cs) = self.splits();
                let parts = [
                    (ch[0].to_lowrank(eps), 0usize, 0usize),
                    (ch[1].to_lowrank(eps), rs, 0),
                    (ch[2].to_lowrank(eps), 0, cs),
                    (ch[3].to_lowrank(eps), rs, cs),
                ];
                let total_rank: usize = parts.iter().map(|(p, _, _)| p.rank()).sum();
                let mut u = Mat::zeros(self.nrows, total_rank);
                let mut v = Mat::zeros(self.ncols, total_rank);
                let mut off = 0;
                for (p, roff, coff) in &parts {
                    for k in 0..p.rank() {
                        u.col_mut(off + k)[*roff..*roff + p.nrows()].copy_from_slice(p.u.col(k));
                        v.col_mut(off + k)[*coff..*coff + p.ncols()].copy_from_slice(p.v.col(k));
                    }
                    off += p.rank();
                }
                let mut out = LowRank::new(u, v);
                let tol = eps * out.norm_fro();
                out.recompress(tol);
                out
            }
        }
    }

    /// Structure statistics.
    pub fn stats(&self) -> HStats {
        let mut s = HStats {
            dense_bytes: self.nrows * self.ncols * std::mem::size_of::<T>(),
            ..Default::default()
        };
        self.stats_rec(&mut s);
        s
    }

    fn stats_rec(&self, s: &mut HStats) {
        match &self.kind {
            HKind::Dense(m) => {
                s.dense_leaves += 1;
                s.bytes += m.byte_size();
            }
            HKind::DenseLu(f) => {
                s.dense_leaves += 1;
                s.bytes += f.byte_size();
            }
            HKind::LowRank(lr) => {
                s.lowrank_leaves += 1;
                s.max_rank = s.max_rank.max(lr.rank());
                s.bytes += lr.byte_size();
            }
            HKind::Hier(ch) => {
                for c in ch.iter() {
                    c.stats_rec(s);
                }
            }
        }
    }
}

pub(crate) fn scale_panel<T: Scalar>(beta: T, mut c: MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.fill(T::ZERO);
        return;
    }
    for j in 0..c.ncols() {
        for x in c.col_mut(j) {
            *x *= beta;
        }
    }
}

/// `C ← C + α·A·B` on hierarchical operands, with recompression at relative
/// tolerance `eps`. All three must come from the same pair of cluster trees
/// (aligned splits).
pub fn h_gemm<T: Scalar>(
    alpha: T,
    a: &HMatrix<T>,
    b: &HMatrix<T>,
    c: &mut HMatrix<T>,
    eps: T::Real,
) {
    assert_eq!(a.ncols, b.nrows);
    assert_eq!(c.nrows, a.nrows);
    assert_eq!(c.ncols, b.ncols);
    if a.nrows == 0 || b.ncols == 0 || a.ncols == 0 {
        return;
    }
    match (&a.kind, &b.kind) {
        (HKind::LowRank(la), _) => {
            if la.rank() == 0 {
                return;
            }
            // α·(U·Vᵀ)·B = α·U·(Bᵀ·V)ᵀ
            let mut z = Mat::zeros(b.ncols, la.rank());
            b.mul_dense_t(T::ONE, la.v.as_ref(), T::ZERO, z.as_mut());
            let p = LowRank::new(la.u.clone(), z);
            c.axpy_lowrank(alpha, &p, eps);
        }
        (_, HKind::LowRank(lb)) => {
            if lb.rank() == 0 {
                return;
            }
            // α·A·(U·Vᵀ) = α·(A·U)·Vᵀ
            let mut z = Mat::zeros(a.nrows, lb.rank());
            a.mul_dense(T::ONE, lb.u.as_ref(), T::ZERO, z.as_mut());
            let p = LowRank::new(z, lb.v.clone());
            c.axpy_lowrank(alpha, &p, eps);
        }
        (HKind::Dense(da), _) => {
            // Thin row panel: D·B via dense×H.
            let mut out = Mat::zeros(a.nrows, b.ncols);
            b.dense_mul_h(T::ONE, da.as_ref(), T::ZERO, out.as_mut());
            c.axpy_dense_block(alpha, 0, 0, out.as_ref(), eps);
        }
        (_, HKind::Dense(db)) => {
            let mut out = Mat::zeros(a.nrows, b.ncols);
            a.mul_dense(T::ONE, db.as_ref(), T::ZERO, out.as_mut());
            c.axpy_dense_block(alpha, 0, 0, out.as_ref(), eps);
        }
        (HKind::Hier(_), HKind::Hier(_)) => match &mut c.kind {
            HKind::Hier(_) => {
                let HKind::Hier(ca) = &a.kind else {
                    unreachable!()
                };
                let HKind::Hier(cb) = &b.kind else {
                    unreachable!()
                };
                let HKind::Hier(cc) = &mut c.kind else {
                    unreachable!()
                };
                // c11 += a11·b11 + a12·b21, etc. (children order [11,21,12,22])
                h_gemm(alpha, &ca[0], &cb[0], &mut cc[0], eps);
                h_gemm(alpha, &ca[2], &cb[1], &mut cc[0], eps);
                h_gemm(alpha, &ca[1], &cb[0], &mut cc[1], eps);
                h_gemm(alpha, &ca[3], &cb[1], &mut cc[1], eps);
                h_gemm(alpha, &ca[0], &cb[2], &mut cc[2], eps);
                h_gemm(alpha, &ca[2], &cb[3], &mut cc[2], eps);
                h_gemm(alpha, &ca[1], &cb[2], &mut cc[3], eps);
                h_gemm(alpha, &ca[3], &cb[3], &mut cc[3], eps);
            }
            _ => {
                // c is a (low-rank) leaf spanning the split: form the product
                // as a low-rank matrix and fold it in.
                let p = h_mul_to_lowrank(a, b, eps);
                c.axpy_lowrank(alpha, &p, eps);
            }
        },
        (HKind::DenseLu(_), _) | (_, HKind::DenseLu(_)) => {
            panic!("h_gemm on factored operands")
        }
    }
}

/// Compute `A·B` collapsed to a single low-rank matrix at relative tolerance
/// `eps`.
pub fn h_mul_to_lowrank<T: Scalar>(a: &HMatrix<T>, b: &HMatrix<T>, eps: T::Real) -> LowRank<T> {
    assert_eq!(a.ncols, b.nrows);
    match (&a.kind, &b.kind) {
        (HKind::LowRank(la), _) => {
            if la.rank() == 0 {
                return LowRank::zeros(a.nrows, b.ncols);
            }
            let mut z = Mat::zeros(b.ncols, la.rank());
            b.mul_dense_t(T::ONE, la.v.as_ref(), T::ZERO, z.as_mut());
            LowRank::new(la.u.clone(), z)
        }
        (_, HKind::LowRank(lb)) => {
            if lb.rank() == 0 {
                return LowRank::zeros(a.nrows, b.ncols);
            }
            let mut z = Mat::zeros(a.nrows, lb.rank());
            a.mul_dense(T::ONE, lb.u.as_ref(), T::ZERO, z.as_mut());
            LowRank::new(z, lb.v.clone())
        }
        (HKind::Dense(da), _) => {
            let mut out = Mat::zeros(a.nrows, b.ncols);
            b.dense_mul_h(T::ONE, da.as_ref(), T::ZERO, out.as_mut());
            let tol = eps * out.norm_fro();
            LowRank::from_dense(&out, tol, out.nrows().min(out.ncols()))
        }
        (_, HKind::Dense(db)) => {
            let mut out = Mat::zeros(a.nrows, b.ncols);
            a.mul_dense(T::ONE, db.as_ref(), T::ZERO, out.as_mut());
            let tol = eps * out.norm_fro();
            LowRank::from_dense(&out, tol, out.nrows().min(out.ncols()))
        }
        (HKind::Hier(ca), HKind::Hier(cb)) => {
            let (ars, _) = a.splits();
            let (_, bcs) = b.splits();
            // P_ij = Σ_k a_ik·b_kj, each collapsed then merged.
            let quad = |ai1: &HMatrix<T>, ai2: &HMatrix<T>, b1j: &HMatrix<T>, b2j: &HMatrix<T>| {
                let p1 = h_mul_to_lowrank(ai1, b1j, eps);
                let p2 = h_mul_to_lowrank(ai2, b2j, eps);
                let tol = eps * (p1.norm_fro() + p2.norm_fro());
                p1.add_truncate(T::ONE, &p2, tol)
            };
            let p11 = quad(&ca[0], &ca[2], &cb[0], &cb[1]);
            let p21 = quad(&ca[1], &ca[3], &cb[0], &cb[1]);
            let p12 = quad(&ca[0], &ca[2], &cb[2], &cb[3]);
            let p22 = quad(&ca[1], &ca[3], &cb[2], &cb[3]);
            let parts = [
                (&p11, 0usize, 0usize),
                (&p21, ars, 0),
                (&p12, 0, bcs),
                (&p22, ars, bcs),
            ];
            let total_rank: usize = parts.iter().map(|(p, _, _)| p.rank()).sum();
            let mut u = Mat::zeros(a.nrows, total_rank);
            let mut v = Mat::zeros(b.ncols, total_rank);
            let mut off = 0;
            for (p, roff, coff) in &parts {
                for k in 0..p.rank() {
                    u.col_mut(off + k)[*roff..*roff + p.nrows()].copy_from_slice(p.u.col(k));
                    v.col_mut(off + k)[*coff..*coff + p.ncols()].copy_from_slice(p.v.col(k));
                }
                off += p.rank();
            }
            let mut out = LowRank::new(u, v);
            let tol = eps * out.norm_fro();
            out.recompress(tol);
            out
        }
        (HKind::DenseLu(_), _) | (_, HKind::DenseLu(_)) => {
            panic!("h_mul_to_lowrank on factored operands")
        }
    }
}
