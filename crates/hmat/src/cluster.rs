//! Geometric cluster tree: recursive bisection of a point cloud.
//!
//! The tree defines (a) the permutation from original indices to *cluster
//! order* in which all H-matrix data lives, and (b) the hierarchy of index
//! ranges the block structure is built from. Splitting is by median along
//! the longest bounding-box axis, which keeps the tree balanced regardless
//! of the point distribution.

use crate::geometry::{Aabb, Point3};

/// Index of a node inside [`ClusterTree::nodes`].
pub type ClusterNodeId = usize;

/// One cluster: a contiguous range `begin..end` of the permuted index array.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    /// Start of the cluster's range in the permuted index array.
    pub begin: usize,
    /// End (exclusive) of the cluster's range.
    pub end: usize,
    /// Bounding box of the cluster's points.
    pub bbox: Aabb,
    /// `(left, right)` child node ids, `None` for leaves.
    pub children: Option<(ClusterNodeId, ClusterNodeId)>,
}

impl ClusterNode {
    /// Number of points in the cluster.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// Whether the cluster holds no points.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// Whether the cluster has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Binary geometric cluster tree over a point cloud.
#[derive(Debug, Clone)]
pub struct ClusterTree {
    /// `perm[pos] = original index` — cluster order to original order.
    pub perm: Vec<usize>,
    /// `inv_perm[original] = pos` — original order to cluster order.
    pub inv_perm: Vec<usize>,
    /// All nodes; the root is index 0, children always follow parents.
    pub nodes: Vec<ClusterNode>,
    /// Leaf capacity used at construction.
    pub leaf_size: usize,
}

impl ClusterTree {
    /// Build a tree over `points` with leaves of at most `leaf_size` points.
    ///
    /// # Examples
    ///
    /// ```
    /// use csolve_hmat::{ClusterTree, Point3};
    ///
    /// let pts: Vec<Point3> = (0..16).map(|i| Point3::new(i as f64, 0.0, 0.0)).collect();
    /// let tree = ClusterTree::build(&pts, 4);
    /// assert_eq!(tree.len(), 16);
    /// assert_eq!(tree.node(tree.root()).len(), 16);
    /// // Every leaf respects the capacity.
    /// assert!(tree.leaf_ranges().iter().all(|r| r.len() <= 4));
    /// ```
    pub fn build(points: &[Point3], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1);
        let n = points.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut nodes = Vec::new();
        if n > 0 {
            build_rec(points, &mut perm, 0, n, leaf_size, &mut nodes);
        } else {
            nodes.push(ClusterNode {
                begin: 0,
                end: 0,
                bbox: Aabb::empty(),
                children: None,
            });
        }
        let mut inv_perm = vec![0usize; n];
        for (pos, &orig) in perm.iter().enumerate() {
            inv_perm[orig] = pos;
        }
        Self {
            perm,
            inv_perm,
            nodes,
            leaf_size,
        }
    }

    /// Id of the root cluster (the full index range).
    pub fn root(&self) -> ClusterNodeId {
        0
    }

    /// Node by id.
    pub fn node(&self, id: ClusterNodeId) -> &ClusterNode {
        &self.nodes[id]
    }

    /// Number of points the tree was built over.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the tree covers no points.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Leaf index ranges in cluster order (the tile boundaries a BLR-style
    /// partitioning would use).
    pub fn leaf_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let nd = self.node(id);
            match nd.children {
                None => out.push(nd.begin..nd.end),
                Some((l, r)) => {
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        out.sort_by_key(|r| r.start);
        out
    }

    /// Apply the permutation: gather `src` (original order) into cluster
    /// order.
    pub fn to_cluster_order<T: Copy>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.len());
        self.perm.iter().map(|&orig| src[orig]).collect()
    }

    /// Inverse: scatter cluster-order `src` back to original order.
    pub fn to_original_order<T: Copy>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.len());
        let mut out = vec![src[0]; self.len()];
        for (pos, &orig) in self.perm.iter().enumerate() {
            out[orig] = src[pos];
        }
        out
    }
}

/// Recursive median split; returns the id of the created node.
fn build_rec(
    points: &[Point3],
    perm: &mut [usize],
    begin: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<ClusterNode>,
) -> ClusterNodeId {
    let bbox = Aabb::from_points(perm[begin..end].iter().map(|&i| &points[i]));
    let id = nodes.len();
    nodes.push(ClusterNode {
        begin,
        end,
        bbox,
        children: None,
    });
    let len = end - begin;
    if len <= leaf_size {
        return id;
    }
    let axis = bbox.longest_axis();
    let mid = begin + len / 2;
    // Median partition along the chosen axis (select_nth keeps O(n)).
    perm[begin..end].select_nth_unstable_by(mid - begin, |&a, &b| {
        points[a]
            .coord(axis)
            .partial_cmp(&points[b].coord(axis))
            .unwrap()
    });
    let left = build_rec(points, perm, begin, mid, leaf_size, nodes);
    let right = build_rec(points, perm, mid, end, leaf_size, nodes);
    nodes[id].children = Some((left, right));
    id
}

/// Standard admissibility: `min(diam(σ), diam(τ)) ≤ η·dist(σ, τ)`.
pub fn admissible(a: &ClusterNode, b: &ClusterNode, eta: f64) -> bool {
    let d = a.bbox.dist(&b.bbox);
    if d <= 0.0 {
        return false;
    }
    a.bbox.diam().min(b.bbox.diam()) <= eta * d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                pts.push(Point3::new(i as f64, j as f64, 0.0));
            }
        }
        pts
    }

    #[test]
    fn permutation_is_a_bijection() {
        let pts = grid_points(13, 7);
        let t = ClusterTree::build(&pts, 8);
        let mut seen = vec![false; pts.len()];
        for &i in &t.perm {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for orig in 0..pts.len() {
            assert_eq!(t.perm[t.inv_perm[orig]], orig);
        }
    }

    #[test]
    fn leaves_partition_the_range() {
        let pts = grid_points(10, 10);
        let t = ClusterTree::build(&pts, 16);
        let ranges = t.leaf_ranges();
        let mut cursor = 0;
        for r in &ranges {
            assert_eq!(r.start, cursor, "contiguous leaves");
            assert!(r.end - r.start <= 16, "leaf size bound");
            assert!(r.end > r.start);
            cursor = r.end;
        }
        assert_eq!(cursor, 100);
    }

    #[test]
    fn children_cover_parent_exactly() {
        let pts = grid_points(9, 5);
        let t = ClusterTree::build(&pts, 4);
        for nd in &t.nodes {
            if let Some((l, r)) = nd.children {
                assert_eq!(t.node(l).begin, nd.begin);
                assert_eq!(t.node(l).end, t.node(r).begin);
                assert_eq!(t.node(r).end, nd.end);
                // Balanced median split: sizes differ by at most 1.
                let ll = t.node(l).len() as i64;
                let rl = t.node(r).len() as i64;
                assert!((ll - rl).abs() <= 1);
            }
        }
    }

    #[test]
    fn clusters_geometrically_localized() {
        // Two well separated blobs must end up in different first-level
        // children.
        let mut pts = grid_points(4, 4);
        for p in grid_points(4, 4) {
            pts.push(Point3::new(p.x + 100.0, p.y, p.z));
        }
        let t = ClusterTree::build(&pts, 8);
        let (l, r) = t.node(t.root()).children.unwrap();
        let d = t.node(l).bbox.dist(&t.node(r).bbox);
        assert!(d > 90.0, "split separated the blobs (dist {d})");
        assert!(admissible(t.node(l), t.node(r), 1.0));
    }

    #[test]
    fn admissibility_diagonal_blocks_rejected() {
        let pts = grid_points(8, 8);
        let t = ClusterTree::build(&pts, 4);
        let root = t.node(t.root());
        assert!(
            !admissible(root, root, 100.0),
            "self block never admissible"
        );
    }

    #[test]
    fn order_round_trip() {
        let pts = grid_points(5, 5);
        let t = ClusterTree::build(&pts, 4);
        let orig: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let clustered = t.to_cluster_order(&orig);
        let back = t.to_original_order(&clustered);
        assert_eq!(orig, back);
    }

    #[test]
    fn single_point_and_empty() {
        let t = ClusterTree::build(&[Point3::new(1.0, 2.0, 3.0)], 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.leaf_ranges(), vec![0..1]);
        let te = ClusterTree::build(&[], 4);
        assert_eq!(te.len(), 0);
    }
}
