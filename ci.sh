#!/usr/bin/env bash
# Full local CI: formatting, lints, docs (warnings fatal), all tests.
# The workspace builds offline; vendor/ holds the dependency stand-ins.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy --features fault-inject (hooks must not bit-rot)"
cargo clippy --workspace --all-targets --offline \
  --features csolve-integration/fault-inject -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> cargo test (conformance suite in smoke profile)"
# The conformance grid runs its reduced sweep under CSOLVE_CONFORMANCE=smoke;
# unset the variable (or run `cargo test --test conformance`) for the full
# {algorithm x backend x threads x symmetry x conditioning} matrix.
CSOLVE_CONFORMANCE=smoke cargo test --workspace --offline -q

echo "==> cargo test --features fault-inject (fault-injection suite)"
CSOLVE_CONFORMANCE=smoke cargo test -p csolve-integration --offline -q \
  --features fault-inject

echo "==> kernels_report smoke run"
# Tiny sizes, one rep; writes target/BENCH_kernels_smoke.json so the
# committed BENCH_kernels.json is never clobbered by CI.
cargo run --release --offline -q --bin kernels_report -- --smoke > /dev/null

echo "CI OK"
