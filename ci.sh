#!/usr/bin/env bash
# Full local CI: formatting, lints, docs (warnings fatal), all tests.
# The workspace builds offline; vendor/ holds the dependency stand-ins.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy --features fault-inject (hooks must not bit-rot)"
cargo clippy --workspace --all-targets --offline \
  --features csolve/fault-inject -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> doc-examples (façade + sparse BLR examples must run)"
cargo test --doc --offline -q -p csolve -p csolve-sparse

echo "==> README config table covers every SolverConfig builder method"
# Docs-drift check: every public builder method of SolverConfigBuilder must
# have a row (a backticked first column) in README.md's Configuration table.
missing=0
for m in $(sed -n '/impl SolverConfigBuilder/,/^}/p' crates/core/src/config.rs \
            | sed -n 's/^ *pub fn \([a-z_0-9]*\).*/\1/p' | sort -u); do
  if ! grep -q "^| \`$m\` |" README.md; then
    echo "   MISSING from README config table: $m"
    missing=1
  fi
done
test "$missing" -eq 0

echo "==> public API surface matches the committed snapshot"
# API-drift check: the names re-exported at the root of the csolve façade
# (plus its module aliases) must match api_surface.txt exactly. A diff means
# the public API changed: if intentional, regenerate the snapshot with the
# same pipeline and commit it alongside the change.
{
  sed -n '/^pub use /,/;$/p' crates/integration/src/lib.rs \
    | tr ',{}' '\n' | sed 's/pub use //; s/;$//; s/^ *//; s/ *$//' \
    | grep -v '::' | grep -v '^$'
  grep '^pub mod ' crates/integration/src/lib.rs \
    | sed 's/^pub mod \([a-z_0-9]*\).*/mod \1/'
} | sort -u > target/api_surface.txt
diff -u api_surface.txt target/api_surface.txt

echo "==> cargo test (conformance suite in smoke profile)"
# The conformance grid runs its reduced sweep under CSOLVE_CONFORMANCE=smoke;
# unset the variable (or run `cargo test --test conformance`) for the full
# {algorithm x backend x threads x symmetry x conditioning} matrix.
CSOLVE_CONFORMANCE=smoke cargo test --workspace --offline -q

echo "==> cargo test --features fault-inject (fault-injection suite)"
CSOLVE_CONFORMANCE=smoke cargo test -p csolve --offline -q \
  --features fault-inject

echo "==> csolve façade builds with --no-default-features"
cargo build --offline -p csolve --no-default-features

echo "==> kernels_report smoke run (kernel throughput gate)"
# Small sizes, few reps; writes target/BENCH_kernels_smoke.json so the
# committed BENCH_kernels.json is never clobbered by CI. Under --smoke the
# binary enforces the kernel contract and exits non-zero on regression:
# c64 blocked-serial GEMM must beat the committed pre-rewrite baseline
# (11.05 GF/s) by >= 1.3x, and blocked GEMM must never measure below the
# naive reference at gated sizes.
cargo run --release --offline -q --bin kernels_report -- --smoke > /dev/null

echo "==> autotune_report smoke run"
# Tier-2 assertion baked into the binary: every successful BlockSizes::Auto
# run must measure within 1.25x of the cost model's predicted peak and
# inside its budget, and at the tightest budget fraction the autotuned run
# must succeed where fixed blocking is out of memory. Writes
# target/BENCH_autotune_smoke.json so the committed BENCH_autotune.json is
# never clobbered by CI.
cargo run --release --offline -q --bin autotune_report -- --smoke > /dev/null

echo "==> blr_report smoke run"
# Tier-2 assertion baked into the binary: under a budget between the
# compressed and uncompressed multi-factorization peaks, the uncompressed
# run must OOM while the sparse_eps=1e-9 run completes with rel error
# <= 1e-7 (the Table-II walkthrough). Writes target/BENCH_blr_smoke.json so
# the committed BENCH_blr.json is never clobbered by CI.
cargo run --release --offline -q --bin blr_report -- --smoke > /dev/null

echo "==> h2_report smoke run"
# Tier-2 assertion baked into the binary: at the largest swept surface size
# the H² nested-basis storage must not exceed the flat H-matrix storage, the
# coupled H2-backend solve must stay within 100*eps of the manufactured
# solution, and its results must be bitwise identical at 1/2/4 threads.
# Writes target/BENCH_h2_smoke.json so the committed BENCH_h2.json is never
# clobbered by CI.
cargo run --release --offline -q --bin h2_report -- --smoke > /dev/null

echo "==> session_report smoke run"
# Tier-2 assertion baked into the binary: the session's batched multi-RHS
# path must reach >= 1.5x the throughput of one full solve per RHS at panel
# width >= 4, and a cache hit must beat a full re-solve. Writes
# target/BENCH_session_smoke.json so the committed BENCH_session.json is
# never clobbered by CI.
cargo run --release --offline -q --bin session_report -- --smoke > /dev/null

echo "==> trace smoke run"
# Quickstart through the façade with tracing on (writes + re-parses the
# JSONL trace and the run report), then the dedicated smoke binary:
# golden phase names, identical span sequence at 1/2/4 threads, and the
# <2% tracing-overhead budget.
CSOLVE_QUICKSTART_N=2000 CSOLVE_TRACE_OUT=target/ci_quickstart \
  cargo run --release --offline -q -p csolve --example quickstart > /dev/null
test -s target/ci_quickstart.trace.jsonl
test -s target/ci_quickstart.report.json
cargo run --release --offline -q -p csolve-bench --bin trace_smoke

echo "CI OK"
